#include "rapid/verify/conformance.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "rapid/rt/map_engine.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::verify {
namespace {

using obs::EventKind;
using obs::ProtoState;
using obs::TraceEvent;

/// One MAP as the symbolic replay predicts it: position, byte deltas, and
/// the arena occupancy after it — the reference CONF-CAP compares traced
/// kMapFree/kMapAlloc/kHeapSample events against.
struct MapExpect {
  std::int32_t pos = 0;
  std::int64_t freed_bytes = 0;
  std::int64_t alloc_bytes = 0;
  std::int64_t in_use_after = 0;
};

/// One MAP as the trace recorded it (kMapBegin .. kMapEnd group).
struct MapTraced {
  std::int32_t pos = 0;
  std::int64_t freed_bytes = 0;
  std::int64_t alloc_bytes = 0;
  std::int64_t sample_after = -1;  // first kHeapSample after kMapEnd
};

class Checker {
 public:
  Checker(const rt::RunPlan& plan, const TraceView& view,
          const ConformanceOptions& options)
      : plan_(plan), view_(view), options_(options) {}

  AuditReport run() {
    RAPID_CHECK(view_.num_procs() >= plan_.num_procs,
                cat("trace has ", view_.num_procs(),
                    " rings but the plan runs ", plan_.num_procs,
                    " processors"));
    note_truncation();
    edges_ = derive_protocol_edges(plan_, view_);
    replay_capacity();
    for (rt::ProcId q = 0; q < plan_.num_procs; ++q) {
      check_states(q);
    }
    check_messages();
    check_races();
    check_capacity();
    flush_truncation_notes();
    return std::move(report_);
  }

 private:
  // -- finding plumbing (auditor discipline + overflow degradation) -------

  void add(Finding finding) {
    // Graceful degradation on ring overflow: with events overwritten, an
    // absent publication/state/byte-delta may simply be lost history, so
    // the history-dependent rules downgrade their errors to warnings.
    if (view_.truncated() && finding.severity == Severity::kError) {
      finding.severity = Severity::kWarning;
    }
    const auto count = ++rule_counts_[finding.rule];
    if (count <= options_.max_findings_per_rule) {
      report_.findings.push_back(std::move(finding));
    }
  }

  void flush_truncation_notes() {
    for (const auto& [rule, count] : rule_counts_) {
      if (count > options_.max_findings_per_rule) {
        Finding f;
        f.rule = "AUDIT-TRUNCATED";
        f.severity = Severity::kInfo;
        f.message = cat(rule, ": ", count, " findings, only the first ",
                        options_.max_findings_per_rule, " shown");
        report_.findings.push_back(std::move(f));
      }
    }
  }

  void note_truncation() {
    if (!view_.truncated()) return;
    std::string drops;
    for (int q = 0; q < view_.num_procs(); ++q) {
      if (view_.dropped[static_cast<std::size_t>(q)] > 0) {
        if (!drops.empty()) drops += ", ";
        drops += cat("p", q, ": ",
                     view_.dropped[static_cast<std::size_t>(q)]);
      }
    }
    Finding f;
    f.rule = "CONF-TRUNCATED";
    f.severity = Severity::kInfo;
    f.message = cat("trace ring(s) overflowed and overwrote the oldest "
                    "events (", drops,
                    "); HB-RACE/CONF-* errors are downgraded to warnings "
                    "and counter reconciliation is skipped");
    f.hint = "raise TraceConfig::events_per_proc to retain full history";
    report_.findings.push_back(std::move(f));
  }

  const std::vector<TraceEvent>& ring(int q) const {
    return view_.rings[static_cast<std::size_t>(q)];
  }

  bool ring_truncated(int q) const {
    return view_.dropped[static_cast<std::size_t>(q)] > 0;
  }

  std::string object_name(rt::DataId d) const {
    return d >= 0 && d < plan_.graph->num_data()
               ? plan_.graph->data(d).name
               : cat("object#", d);
  }

  // -- CONF-CAP reference: the auditor's symbolic MAP replay --------------

  void replay_capacity() {
    if (options_.capacity_per_proc <= 0) return;
    expected_maps_.resize(static_cast<std::size_t>(plan_.num_procs));
    replay_ok_.assign(static_cast<std::size_t>(plan_.num_procs), false);
    for (rt::ProcId p = 0; p < plan_.num_procs; ++p) {
      std::unique_ptr<rt::ProcMemory> memory;
      try {
        memory = std::make_unique<rt::ProcMemory>(
            plan_, p, options_.capacity_per_proc, options_.alignment,
            options_.alloc_policy, options_.slab_arena);
        if (!options_.active_memory) {
          memory->preallocate_all();
          baseline_in_use_.push_back(memory->in_use_bytes());
          replay_ok_[static_cast<std::size_t>(p)] = true;
          continue;
        }
        std::int64_t freed_bytes = 0;
        memory->set_free_hook(
            [&freed_bytes](rt::DataId, mem::Offset, std::int64_t size) {
              freed_bytes += size;
            });
        const auto n =
            static_cast<std::int32_t>(plan_.procs[p].order.size());
        for (std::int32_t pos = 0; pos < n; ++pos) {
          if (!memory->needs_map(pos)) continue;
          freed_bytes = 0;
          const rt::MapResult map = memory->perform_map(pos);
          MapExpect e;
          e.pos = pos;
          e.freed_bytes = freed_bytes;
          for (const rt::DataId d : map.allocated) {
            e.alloc_bytes += plan_.graph->data(d).size_bytes;
          }
          e.in_use_after = memory->in_use_bytes();
          expected_maps_[static_cast<std::size_t>(p)].push_back(e);
        }
        replay_ok_[static_cast<std::size_t>(p)] = true;
      } catch (const rt::NonExecutableError& e) {
        add({.rule = "CONF-CAP",
             .proc = p,
             .message = cat("symbolic CAP replay is non-executable at "
                            "capacity ",
                            options_.capacity_per_proc,
                            " bytes, yet the run produced a trace: ",
                            e.what()),
             .hint = "the checker's capacity/alignment/policy options must "
                     "match the run's RunConfig exactly"});
      }
    }
  }

  // -- CONF-STATE: protocol-state sequence vs scheduled positions ---------

  /// Change-only emission of the expected Fig. 3(b) state sequence for one
  /// processor, MAPs interleaved at `map_positions`.
  std::vector<ProtoState> expected_states(
      rt::ProcId q, const std::vector<std::int32_t>& map_positions) const {
    std::vector<ProtoState> out;
    const auto emit = [&out](ProtoState s) {
      if (out.empty() || out.back() != s) out.push_back(s);
    };
    std::size_t mi = 0;
    const auto n = static_cast<std::int32_t>(plan_.procs[q].order.size());
    for (std::int32_t pos = 0; pos < n; ++pos) {
      if (mi < map_positions.size() && map_positions[mi] == pos) {
        emit(ProtoState::kMap);
        ++mi;
      }
      emit(ProtoState::kRec);
      emit(ProtoState::kExe);
      emit(ProtoState::kSnd);
    }
    emit(ProtoState::kEnd);
    return out;
  }

  void check_states(rt::ProcId q) {
    std::vector<ProtoState> traced;
    std::vector<rt::TaskId> begun;
    std::vector<std::int32_t> map_positions;
    for (const TraceEvent& e : ring(q)) {
      switch (e.kind) {
        case EventKind::kStateEnter:
          traced.push_back(static_cast<ProtoState>(e.a));
          break;
        case EventKind::kTaskBegin:
          begun.push_back(static_cast<rt::TaskId>(e.a));
          break;
        case EventKind::kMapBegin:
          map_positions.push_back(e.a);
          break;
        default:
          break;
      }
    }
    if (ring(q).empty()) return;  // untraced ring (disabled or unused)

    // Task order: the traced kTaskBegin sequence must be exactly the
    // scheduled order (or its retained suffix after an overflow).
    const auto& order = plan_.procs[q].order;
    if (!match_sequence(begun, order, ring_truncated(q))) {
      add({.rule = "CONF-STATE",
           .proc = q,
           .message = cat("processor ", q, " traced ", begun.size(),
                          " task begins that diverge from its scheduled "
                          "order of ",
                          order.size(), " tasks",
                          first_divergence(begun, order)),
           .hint = "the executor ran tasks outside its scheduled positions "
                   "— or the trace was edited"});
      return;  // the state sequence is meaningless past a task divergence
    }

    // MAP positions must be strictly increasing; with a capacity replay
    // they must ALSO be exactly the replay's MAP positions.
    for (std::size_t i = 1; i < map_positions.size(); ++i) {
      if (map_positions[i] <= map_positions[i - 1]) {
        add({.rule = "CONF-STATE",
             .proc = q,
             .position = map_positions[i],
             .message = cat("processor ", q, " traced a MAP at position ",
                            map_positions[i], " after one at ",
                            map_positions[i - 1],
                            " — MAP positions must advance"),
             .hint = "ProcMemory::perform_map always extends the allocated "
                     "prefix"});
        return;
      }
    }
    std::vector<std::int32_t> expected_positions = map_positions;
    if (!expected_maps_.empty() &&
        replay_ok_[static_cast<std::size_t>(q)] && options_.active_memory) {
      expected_positions.clear();
      for (const MapExpect& e :
           expected_maps_[static_cast<std::size_t>(q)]) {
        expected_positions.push_back(e.pos);
      }
      if (!match_sequence(map_positions, expected_positions,
                          ring_truncated(q))) {
        add({.rule = "CONF-STATE",
             .proc = q,
             .message = cat("processor ", q, " traced ",
                            map_positions.size(),
                            " MAPs but the symbolic replay schedules ",
                            expected_positions.size(),
                            first_divergence(map_positions,
                                             expected_positions)),
             .hint = "MAP placement is deterministic per processor; a "
                     "divergence means the run used different "
                     "capacity/alignment/policy than the checker"});
        return;
      }
    }

    // The change-only REC→EXE→SND→MAP→END emission must match exactly
    // (suffix after an overflow).
    const std::vector<ProtoState> expected =
        expected_states(q, expected_positions);
    if (!match_sequence(traced, expected, ring_truncated(q))) {
      add({.rule = "CONF-STATE",
           .proc = q,
           .message = cat("processor ", q,
                          " traced a protocol-state sequence of ",
                          traced.size(),
                          " transitions that diverges from the scheduled ",
                          expected.size(),
                          first_divergence(traced, expected)),
           .hint = "each task must pass REC→EXE→SND with MAPs at the "
                   "replayed positions and END last (Fig. 3(b))"});
    }
  }

  /// Exact match, or — when the ring overflowed — match against the
  /// expected sequence's tail (the retained events are the newest).
  template <typename T>
  static bool match_sequence(const std::vector<T>& traced,
                             const std::vector<T>& expected,
                             bool truncated) {
    if (!truncated) return traced == expected;
    if (traced.size() > expected.size()) return false;
    return std::equal(traced.begin(), traced.end(),
                      expected.end() -
                          static_cast<std::ptrdiff_t>(traced.size()));
  }

  template <typename T>
  static std::string first_divergence(const std::vector<T>& traced,
                                      const std::vector<T>& expected) {
    const std::size_t n = std::min(traced.size(), expected.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!(traced[i] == expected[i])) {
        return cat(" (first divergence at step ", i, ")");
      }
    }
    return cat(" (lengths differ: ", traced.size(), " vs ",
               expected.size(), ")");
  }

  // -- CONF-MSG: puts/installs vs the plan's send set ---------------------

  void check_messages() {
    struct Publish {
      EventRef ref;
      EventKind kind;
      std::uint16_t seq;
      bool matched = false;
    };
    // All publications keyed by (object, version, dest), in ring order.
    std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t>,
             std::vector<Publish>>
        pubs;
    std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t>,
             std::int64_t>
        put_count;  // kPut (the memcpy) per (object, version, dest)
    // Publication sequence stream per (owner ring, object, dest).
    std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t>,
             std::vector<std::uint16_t>>
        seq_stream;
    // Package installs per (src, dst): seqs in install order.
    std::map<std::pair<std::int32_t, std::int32_t>,
             std::vector<std::int32_t>>
        install_seqs;
    std::int64_t publishes = 0, resends = 0, nacks = 0, flags = 0,
                 pkg_sends = 0, task_begins = 0;
    for (int r = 0; r < view_.num_procs(); ++r) {
      for (std::int32_t i = 0;
           i < static_cast<std::int32_t>(ring(r).size()); ++i) {
        const TraceEvent& e = ring(r)[static_cast<std::size_t>(i)];
        switch (e.kind) {
          case EventKind::kPutPublish:
          case EventKind::kResend:
            pubs[{e.a, e.b, e.c}].push_back(
                {EventRef{r, i}, e.kind, e.d, false});
            seq_stream[{r, e.a, e.c}].push_back(e.d);
            e.kind == EventKind::kResend ? ++resends : ++publishes;
            break;
          case EventKind::kPut:
            ++put_count[{e.a, e.b, e.c}];
            break;
          case EventKind::kNack:
            ++nacks;
            break;
          case EventKind::kFlagSend:
            ++flags;
            break;
          case EventKind::kAddrPkgSend:
            ++pkg_sends;
            break;
          case EventKind::kAddrPkgInstall:
            install_seqs[{e.c, r}].push_back(e.b);
            break;
          case EventKind::kTaskBegin:
            ++task_begins;
            break;
          default:
            break;
        }
      }
    }

    // Every planned send must have been published exactly once, on the
    // owner's own ring.
    for (rt::DataId d = 0; d < plan_.graph->num_data(); ++d) {
      const rt::ProcId owner = plan_.graph->data(d).owner;
      const auto& by_version = plan_.objects[d].sends_by_version;
      for (std::size_t v = 0; v < by_version.size(); ++v) {
        for (const rt::ProcId dest : by_version[v]) {
          auto it = pubs.find({d, static_cast<std::int32_t>(v), dest});
          Publish* found = nullptr;
          if (it != pubs.end()) {
            for (Publish& p : it->second) {
              if (p.ref.proc == owner && !p.matched) {
                found = &p;
                break;
              }
            }
          }
          if (found != nullptr) {
            found->matched = true;
          } else if (!ring(owner).empty()) {
            add({.rule = "CONF-MSG",
                 .object = d,
                 .proc = owner,
                 .message = cat("planned send of ", object_name(d),
                                " version ", v, " to processor ", dest,
                                " was never published in the trace"),
                 .hint = "a missing publication means the reader consumed "
                         "unreleased content (see the paired HB-RACE "
                         "finding) or the run was cancelled mid-protocol"});
          }
        }
      }
    }

    // Leftover publications: legitimate only as sequence-gated resends of
    // an already-matched publication of the same (object, version, dest).
    for (auto& [key, list] : pubs) {
      const auto [d, v, dest] = key;
      std::uint16_t matched_seq = 0;
      for (const Publish& p : list) {
        if (p.matched) matched_seq = p.seq;
      }
      for (const Publish& p : list) {
        if (p.matched) continue;
        const bool gated_resend =
            p.kind == EventKind::kResend && matched_seq != 0 &&
            p.ref.proc == plan_.graph->data(d).owner &&
            static_cast<std::uint16_t>(p.seq) >
                matched_seq;  // strictly after the original put
        if (!gated_resend) {
          add({.rule = "CONF-MSG",
               .object = d,
               .proc = static_cast<rt::ProcId>(p.ref.proc),
               .message = cat("traced put of ", object_name(d),
                              " version ", v, " to processor ", dest,
                              " (seq ", p.seq,
                              ") is outside the plan's send set"),
               .hint = "only planned sends and their sequence-gated "
                       "resends may appear on the wire"});
        }
      }
    }

    // Sequence gating: per (owner, object, dest) the put sequence stream
    // must be exactly 1, 2, 3, ... — no gaps, no replays.
    for (const auto& [key, seqs] : seq_stream) {
      const auto [r, d, dest] = key;
      if (ring_truncated(r)) continue;  // prefix seqs were overwritten
      for (std::size_t i = 0; i < seqs.size(); ++i) {
        const auto want = static_cast<std::uint16_t>(i + 1);
        if (seqs[i] != want) {
          add({.rule = "CONF-MSG",
               .object = static_cast<rt::DataId>(d),
               .proc = static_cast<rt::ProcId>(r),
               .message = cat("put sequence for ", object_name(d),
                              " → processor ", dest, " is ", seqs[i],
                              " where ", want,
                              " was expected — resends must be gated by "
                              "consecutive sequence numbers"),
               .hint = "see docs/PROTOCOL.md, integrity and re-request "
                       "recovery"});
          break;
        }
      }
    }

    // Every payload copy must be published, and vice versa: the kPut
    // (memcpy) and kPutPublish/kResend (release) counts pair 1:1.
    for (const auto& [key, copies] : put_count) {
      const auto [d, v, dest] = key;
      const auto it = pubs.find(key);
      const std::int64_t published =
          it == pubs.end() ? 0
                           : static_cast<std::int64_t>(it->second.size());
      if (copies != published &&
          !ring_truncated(plan_.graph->data(d).owner)) {
        add({.rule = "CONF-MSG",
             .object = static_cast<rt::DataId>(d),
             .proc = plan_.graph->data(d).owner,
             .message = cat("object ", object_name(d), " version ", v,
                            " → processor ", dest, ": ", copies,
                            " payload copies but ", published,
                            " publications — a put's release store was "
                            "suppressed or forged"),
             .hint = "every RMA memcpy must be followed by exactly one "
                     "release publication (docs/RUNTIME.md)"});
      }
    }
    for (const auto& [key, list] : pubs) {
      if (put_count.find(key) == put_count.end()) {
        const auto [d, v, dest] = key;
        if (ring_truncated(list.front().ref.proc)) continue;
        add({.rule = "CONF-MSG",
             .object = static_cast<rt::DataId>(d),
             .proc = static_cast<rt::ProcId>(list.front().ref.proc),
             .message = cat("object ", object_name(d), " version ", v,
                            " → processor ", dest,
                            " was published without any payload copy"),
             .hint = "a publication with no preceding kPut means the "
                     "release store published garbage"});
      }
    }

    // Address packages: every install must match a send (unmatched ones
    // came from derive_protocol_edges), and per (src, dst) the installed
    // seqs must be strictly increasing — a replayed package that got
    // installed twice is a failed duplicate suppression.
    for (const EventRef& ref : edges_.unmatched_installs) {
      const TraceEvent& e = view_.at(ref);
      if (ring_truncated(e.c)) continue;  // its send was overwritten
      add({.rule = "CONF-MSG",
           .proc = static_cast<rt::ProcId>(ref.proc),
           .message = cat("processor ", ref.proc,
                          " installed address package seq ", e.b,
                          " from processor ", e.c,
                          " that was never sent"),
           .hint = "packages are stamped per (sender, owner); an "
                   "unmatched install is forged or corrupted"});
    }
    for (const auto& [key, seqs] : install_seqs) {
      for (std::size_t i = 1; i < seqs.size(); ++i) {
        if (seqs[i] <= seqs[i - 1]) {
          add({.rule = "CONF-MSG",
               .proc = static_cast<rt::ProcId>(key.second),
               .message = cat("processor ", key.second,
                              " installed package seq ", seqs[i],
                              " from processor ", key.first,
                              " after seq ", seqs[i - 1],
                              " — duplicate suppression failed"),
               .hint = "replayed packages must be dropped by sequence "
                       "(docs/PROTOCOL.md)"});
          break;
        }
      }
    }

    // Counter reconciliation: the trace and the RunReport describe the
    // same run, so the event counts must agree exactly. Skipped on
    // overflow (traced counts become lower bounds).
    if (options_.report != nullptr && !view_.truncated()) {
      const rt::RunReport& rep = *options_.report;
      const auto reconcile = [this](const char* what, std::int64_t traced,
                                    std::int64_t reported) {
        if (traced == reported) return;
        add({.rule = "CONF-MSG",
             .message = cat(what, ": trace shows ", traced,
                            " but the run report counted ", reported),
             .hint = "trace events and counters are written by the same "
                     "worker; a divergence is a lost event or a phantom "
                     "counter bump"});
      };
      reconcile("content messages (kPutPublish + kResend)",
                publishes + resends, rep.content_messages);
      reconcile("resends (kResend)", resends, rep.recovery.resends);
      reconcile("re-requests (kNack)", nacks, rep.recovery.nacks_sent);
      reconcile("flag sends (kFlagSend)", flags, rep.flag_messages);
      reconcile("address packages (kAddrPkgSend)", pkg_sends,
                rep.addr_packages);
      reconcile("task executions (kTaskBegin)", task_begins,
                rep.tasks_executed);
    }
  }

  // -- HB-RACE: the vector-clock questions --------------------------------

  void check_races() {
    for (const EventRef& ref : edges_.unmatched_consumes) {
      const TraceEvent& e = view_.at(ref);
      if (ring_truncated(e.c)) continue;  // publication was overwritten
      add({.rule = "HB-RACE",
           .object = static_cast<rt::DataId>(e.a),
           .proc = static_cast<rt::ProcId>(ref.proc),
           .message = cat("processor ", ref.proc, " consumed ",
                          object_name(e.a), " version ", e.b,
                          " with no publication happens-before it — the "
                          "read is not ordered after any release of that "
                          "content"),
           .hint = "a consume must be hb-after the put's release "
                   "publication (docs/RUNTIME.md, content put ordering)"});
    }

    const HbGraph hb(view_, edges_.edges);
    if (!hb.consistent()) {
      add({.rule = "HB-RACE",
           .message = "the trace's happens-before edges form a cycle — "
                      "impossible for a real run, so the trace is "
                      "corrupted; race queries were skipped",
           .hint = "re-record the trace; real synchronization cannot be "
                   "cyclic"});
      return;
    }

    // Per reader ring: every consume of an object must precede the MAP
    // free of its region, and every publication into that region must be
    // hb-before the free (a late resend memcpy into recycled heap is the
    // killer bug class for volatile regions).
    for (int r = 0; r < plan_.num_procs; ++r) {
      // object → publications targeting (object, dest=r), any ring.
      std::map<std::int32_t, std::vector<EventRef>> pubs_into_r;
      for (int o = 0; o < view_.num_procs(); ++o) {
        for (std::int32_t i = 0;
             i < static_cast<std::int32_t>(ring(o).size()); ++i) {
          const TraceEvent& e = ring(o)[static_cast<std::size_t>(i)];
          if ((e.kind == EventKind::kPutPublish ||
               e.kind == EventKind::kResend) &&
              e.c == r) {
            pubs_into_r[e.a].push_back(EventRef{o, i});
          }
        }
      }
      for (std::int32_t i = 0;
           i < static_cast<std::int32_t>(ring(r).size()); ++i) {
        const TraceEvent& f = ring(r)[static_cast<std::size_t>(i)];
        if (f.kind != EventKind::kMapFree) continue;
        const EventRef free_ref{r, i};
        // Reads after the free, in the reader's own program order.
        for (std::int32_t j = i + 1;
             j < static_cast<std::int32_t>(ring(r).size()); ++j) {
          const TraceEvent& e = ring(r)[static_cast<std::size_t>(j)];
          if (e.kind == EventKind::kConsume && e.a == f.a) {
            add({.rule = "HB-RACE",
                 .object = static_cast<rt::DataId>(f.a),
                 .proc = static_cast<rt::ProcId>(r),
                 .message = cat("processor ", r, " consumed ",
                                object_name(f.a), " version ", e.b,
                                " AFTER the MAP freed its region — a "
                                "use-after-free across volatile heap "
                                "reuse"),
                 .hint = "the MAP may only free an object past its last "
                         "consumer (liveness last_pos)"});
          }
        }
        // Publications into the region must be ordered before the free.
        const auto it = pubs_into_r.find(f.a);
        if (it == pubs_into_r.end()) continue;
        for (const EventRef& pub : it->second) {
          if (!hb.happens_before(pub, free_ref)) {
            add({.rule = "HB-RACE",
                 .object = static_cast<rt::DataId>(f.a),
                 .proc = static_cast<rt::ProcId>(r),
                 .message = cat("publication of ", object_name(f.a),
                                " version ", view_.at(pub).b,
                                " by processor ", pub.proc,
                                " is not happens-before the MAP free of "
                                "its destination region on processor ", r,
                                " — the put may land in recycled heap"),
                 .hint = "a put must be consumed (or provably dead) "
                         "before its destination region is freed"});
          }
        }
      }
    }
  }

  // -- CONF-CAP: traced byte deltas vs the symbolic replay ----------------

  void check_capacity() {
    if (options_.capacity_per_proc <= 0) return;
    for (rt::ProcId p = 0; p < plan_.num_procs; ++p) {
      if (!replay_ok_[static_cast<std::size_t>(p)]) continue;
      if (ring(p).empty()) continue;  // untraced ring
      // Parse the traced kMapBegin..kMapEnd groups.
      std::vector<MapTraced> traced;
      bool open = false;
      for (const TraceEvent& e : ring(p)) {
        switch (e.kind) {
          case EventKind::kMapBegin:
            traced.push_back({e.a, 0, 0, -1});
            open = true;
            break;
          case EventKind::kMapFree:
            if (open) traced.back().freed_bytes += e.bytes;
            break;
          case EventKind::kMapAlloc:
            if (open) traced.back().alloc_bytes += e.bytes;
            break;
          case EventKind::kMapEnd:
            open = false;
            break;
          case EventKind::kHeapSample:
            if (!open && !traced.empty() &&
                traced.back().sample_after < 0) {
              traced.back().sample_after = e.bytes;
            }
            break;
          default:
            break;
        }
      }
      if (!options_.active_memory) {
        if (!traced.empty()) {
          add({.rule = "CONF-CAP",
               .proc = p,
               .message = cat("processor ", p, " traced ", traced.size(),
                              " MAPs in baseline (preallocated) mode — "
                              "no MAP may run"),
               .hint = "active_memory false preallocates every volatile "
                       "at start"});
        }
        continue;
      }
      const auto& expected = expected_maps_[static_cast<std::size_t>(p)];
      if (!ring_truncated(p) && traced.size() != expected.size()) {
        add({.rule = "CONF-CAP",
             .proc = p,
             .message = cat("processor ", p, " traced ", traced.size(),
                            " MAPs but the symbolic replay schedules ",
                            expected.size()),
             .hint = "capacity/alignment/policy options must match the "
                     "run's RunConfig"});
        continue;
      }
      if (traced.size() > expected.size()) continue;  // truncated & odd
      // Align the traced groups with the replay's tail (identical when
      // nothing was dropped).
      const std::size_t offset = expected.size() - traced.size();
      for (std::size_t k = 0; k < traced.size(); ++k) {
        const MapTraced& got = traced[k];
        const MapExpect& want = expected[offset + k];
        if (got.pos != want.pos || got.freed_bytes != want.freed_bytes ||
            got.alloc_bytes != want.alloc_bytes) {
          add({.rule = "CONF-CAP",
               .proc = p,
               .position = got.pos,
               .message = cat("processor ", p, " MAP #", offset + k,
                              " traced (pos ", got.pos, ", freed ",
                              got.freed_bytes, " B, allocated ",
                              got.alloc_bytes,
                              " B) but the symbolic replay predicts (pos ",
                              want.pos, ", freed ", want.freed_bytes,
                              " B, allocated ", want.alloc_bytes, " B)"),
               .hint = "per-processor MAP byte deltas are deterministic; "
                       "a divergence is a checker/run config mismatch or "
                       "a corrupted trace"});
          break;
        }
        if (got.sample_after >= 0 &&
            got.sample_after != want.in_use_after) {
          add({.rule = "CONF-CAP",
               .proc = p,
               .position = got.pos,
               .message = cat("processor ", p, " sampled ",
                              got.sample_after, " bytes in use after the "
                              "MAP at position ", got.pos,
                              " but the symbolic replay predicts ",
                              want.in_use_after),
               .hint = "arena occupancy after a MAP is a pure function "
                       "of the plan and the capacity"});
          break;
        }
      }
    }
  }

  const rt::RunPlan& plan_;
  const TraceView& view_;
  const ConformanceOptions& options_;
  ProtocolEdges edges_;
  AuditReport report_;
  std::map<std::string, std::int32_t> rule_counts_;
  /// Symbolic replay results (capacity mode only).
  std::vector<std::vector<MapExpect>> expected_maps_;
  std::vector<bool> replay_ok_;
  std::vector<std::int64_t> baseline_in_use_;
};

}  // namespace

AuditReport check_conformance(const rt::RunPlan& plan, const TraceView& view,
                              const ConformanceOptions& options) {
  return Checker(plan, view, options).run();
}

AuditReport check_conformance(const rt::RunPlan& plan,
                              const obs::Trace& trace,
                              const ConformanceOptions& options) {
  const TraceView view = TraceView::from(trace);
  return Checker(plan, view, options).run();
}

}  // namespace rapid::verify
