// rapid_verify: audit a workload's schedule + run plan before anyone
// executes it. Builds the requested workload(s), schedules them, runs the
// static plan auditor (Theorem 1 preconditions + the Def. 6 capacity
// replay), prints the findings, and exits non-zero iff any ERROR finding
// survives — the inspector-stage gate the paper's runtime trusts implicitly.
//
//   ./rapid_verify                         # all four seed workloads
//   ./rapid_verify --workload=lu --ordering=mpo --capacity-frac=0.6
//   ./rapid_verify --workload=fig2 --capacity-frac=0  # executability bound
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "rapid/num/cholesky_app.hpp"
#include "rapid/num/lu_app.hpp"
#include "rapid/num/nbody_app.hpp"
#include "rapid/num/trisolve_app.hpp"
#include "rapid/num/workloads.hpp"
#include "rapid/rt/plan.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/exit_codes.hpp"
#include "rapid/support/flags.hpp"
#include "rapid/support/str.hpp"
#include "rapid/verify/auditor.hpp"

namespace {

using namespace rapid;

struct Target {
  std::string name;
  graph::TaskGraph* graph = nullptr;
  // Keep whichever app owns the graph alive for the audit.
  std::shared_ptr<void> owner;
};

Target make_target(const std::string& name, double scale,
                   sparse::Index block, int procs) {
  Target target;
  target.name = name;
  if (name == "fig2") {
    auto g = std::make_shared<graph::TaskGraph>(
        graph::make_paper_figure2_graph());
    target.graph = g.get();
    target.owner = g;
  } else if (name == "cholesky") {
    auto workload = num::bcsstk24_like(scale);
    auto app = std::make_shared<num::CholeskyApp>(
        num::CholeskyApp::build(std::move(workload.matrix), block, procs));
    target.graph = &app->mutable_graph();
    target.owner = app;
  } else if (name == "lu") {
    auto workload = num::goodwin_like(scale);
    auto app = std::make_shared<num::LuApp>(
        num::LuApp::build(std::move(workload.matrix), block, procs));
    target.graph = &app->mutable_graph();
    target.owner = app;
  } else if (name == "trisolve") {
    auto workload = num::bcsstk24_like(scale);
    auto app = std::make_shared<num::TriSolveApp>(
        num::TriSolveApp::build(std::move(workload.matrix), block, procs));
    target.graph = &app->mutable_graph();
    target.owner = app;
  } else if (name == "nbody") {
    num::NBodyConfig config;  // small fixed grid; scale does not apply
    auto app = std::make_shared<num::NBodyApp>(
        num::NBodyApp::build(config, procs));
    target.graph = &app->mutable_graph();
    target.owner = app;
  } else {
    RAPID_FAIL(cat("unknown workload '", name,
                   "' (expected fig2|cholesky|lu|trisolve|nbody|all)"));
  }
  return target;
}

sched::Schedule make_schedule(const graph::TaskGraph& graph,
                              const std::string& ordering, int procs,
                              const machine::MachineParams& params) {
  const auto assignment = sched::owner_compute_tasks(graph, procs);
  if (ordering == "rcp") {
    return sched::schedule_rcp(graph, assignment, procs, params);
  }
  if (ordering == "mpo") {
    return sched::schedule_mpo(graph, assignment, procs, params);
  }
  if (ordering == "dts") {
    return sched::schedule_dts(graph, assignment, procs, params);
  }
  RAPID_FAIL(cat("unknown ordering '", ordering, "' (expected rcp|mpo|dts)"));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("workload", "all",
               "fig2|cholesky|lu|trisolve|nbody|all — what to audit");
  flags.define("ordering", "mpo", "task ordering: rcp|mpo|dts");
  flags.define("scale", "0.25", "workload scale in (0,1]");
  flags.define("block", "6", "block size for the matrix partitions");
  flags.define("procs", "4", "number of processors");
  flags.define("capacity-frac", "0",
               "per-proc capacity as a fraction of TOT (the paper's §5.1 "
               "sweep axis); 0 audits at the executability threshold "
               "MIN_MEM + MIN_MEM/8 (the first-fit fragmentation slack the "
               "test suite uses), negative skips the capacity replay");
  flags.define("mailbox-slots", "1", "address-package slots per pair");
  flags.define("strict", "false",
               "exit non-zero on warnings too (MBX-CROSS/REC-CROSS and "
               "friends), for CI lanes that want advisory findings to "
               "block");
  flags.define("verbose", "false", "print the full report even when clean");
  try {
    flags.parse(argc, argv);
  } catch (const rapid::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitInfraError;
  }
  if (flags.help_requested()) return kExitOk;

  std::vector<std::string> names;
  if (flags.get("workload") == "all") {
    names = {"cholesky", "lu", "trisolve", "nbody"};
  } else {
    names = {flags.get("workload")};
  }

  const int procs = static_cast<int>(flags.get_int("procs"));
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const double capacity_frac = flags.get_double("capacity-frac");
  const auto params = machine::MachineParams::cray_t3d(procs);

  int total_errors = 0;
  int total_warnings = 0;
  for (const std::string& name : names) {
    try {
      const Target target = make_target(name, scale, block, procs);
      const sched::Schedule schedule =
          make_schedule(*target.graph, flags.get("ordering"), procs, params);
      const rt::RunPlan plan = rt::build_run_plan(*target.graph, schedule);
      const auto liveness = sched::analyze_liveness(*target.graph, schedule);

      verify::AuditOptions options;
      options.mailbox_slots =
          static_cast<std::int32_t>(flags.get_int("mailbox-slots"));
      if (capacity_frac < 0) {
        options.capacity_per_proc = 0;  // skip the replay
      } else if (capacity_frac == 0) {
        // MIN_MEM is the Def. 6 bound for an ideal allocator; first-fit
        // placement can fragment just above it (the paper's §6 "special
        // memory allocator" question). Audit at the same slacked threshold
        // the repo's executability tests use.
        options.capacity_per_proc =
            liveness.min_mem() + liveness.min_mem() / 8;
      } else {
        options.capacity_per_proc = static_cast<std::int64_t>(
            capacity_frac * static_cast<double>(liveness.tot_mem()));
      }

      const verify::AuditReport report =
          verify::audit_plan(*target.graph, schedule, plan, options);
      std::printf("%-9s %s  (%d tasks, %d objects, %d procs, capacity %lld "
                  "bytes, MIN_MEM %lld, TOT %lld)\n",
                  name.c_str(), report.summary().c_str(),
                  target.graph->num_tasks(), target.graph->num_data(), procs,
                  static_cast<long long>(options.capacity_per_proc),
                  static_cast<long long>(liveness.min_mem()),
                  static_cast<long long>(liveness.tot_mem()));
      if (!report.clean() || flags.get_bool("verbose")) {
        std::printf("%s", report.to_string().c_str());
      }
      total_errors += report.errors();
      total_warnings += report.warnings();
    } catch (const rapid::Error& e) {
      std::fprintf(stderr, "%s: audit failed to run: %s\n", name.c_str(),
                   e.what());
      return kExitInfraError;
    }
  }
  if (total_errors > 0) return kExitFindings;
  if (flags.get_bool("strict") && total_warnings > 0) return kExitFindings;
  return kExitOk;
}
