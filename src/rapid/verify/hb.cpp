#include "rapid/verify/hb.hpp"

#include <cstddef>
#include <map>
#include <tuple>
#include <utility>

#include "rapid/support/check.hpp"

namespace rapid::verify {

using obs::EventKind;

TraceView TraceView::from(const obs::Trace& trace) {
  TraceView view;
  const int p = trace.num_procs();
  view.rings.reserve(static_cast<std::size_t>(p));
  view.dropped.reserve(static_cast<std::size_t>(p));
  for (int q = 0; q < p; ++q) {
    view.rings.push_back(trace.events(q));
    view.dropped.push_back(trace.dropped(q));
  }
  return view;
}

bool TraceView::truncated() const {
  for (const std::int64_t d : dropped) {
    if (d > 0) return true;
  }
  return false;
}

ProtocolEdges derive_protocol_edges(const rt::RunPlan& plan,
                                    const TraceView& view) {
  ProtocolEdges out;
  // Publications keyed by the release/acquire chain's own identifiers.
  // pub_by_seq: (object, dest, seq stamp) — the exact put the reader's
  // acquire load observed. first_pub: (object, version, dest) — fallback
  // for stamp-free consumes (seq == 0), matching the weakest sound edge:
  // every later put into the same slot is program-ordered after the first.
  std::map<std::tuple<std::int32_t, std::int32_t, std::uint16_t>, EventRef>
      pub_by_seq;
  std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t>, EventRef>
      first_pub;
  // Address packages: (src ring, dest ring, package seq).
  std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t>, EventRef>
      pkg_send;
  // Content re-requests: (reader ring, object, examined seq stamp).
  std::map<std::tuple<std::int32_t, std::int32_t, std::uint16_t>, EventRef>
      nack_by_seq;
  // First task-begin on ring r gated by remote sync pred t: (r, t).
  std::map<std::pair<std::int32_t, std::int32_t>, EventRef> first_gated_begin;

  const int p = view.num_procs();
  for (std::int32_t r = 0; r < p; ++r) {
    const auto& ring = view.rings[static_cast<std::size_t>(r)];
    for (std::int32_t i = 0; i < static_cast<std::int32_t>(ring.size());
         ++i) {
      const obs::TraceEvent& e = ring[static_cast<std::size_t>(i)];
      const EventRef ref{r, i};
      switch (e.kind) {
        case EventKind::kPutPublish:
        case EventKind::kResend:
          pub_by_seq.emplace(std::make_tuple(e.a, e.c, e.d), ref);
          first_pub.emplace(std::make_tuple(e.a, e.b, e.c), ref);
          break;
        case EventKind::kAddrPkgSend:
          pkg_send.emplace(std::make_tuple(r, e.c, e.b), ref);
          break;
        case EventKind::kNack:
          if (e.a >= 0) {
            nack_by_seq.emplace(std::make_tuple(r, e.a, e.d), ref);
          }
          break;
        case EventKind::kTaskBegin: {
          const auto t = static_cast<graph::TaskId>(e.a);
          if (t < plan.graph->num_tasks()) {
            for (const graph::TaskId pred :
                 plan.tasks[t].remote_sync_preds) {
              first_gated_begin.emplace(
                  std::make_pair(r, static_cast<std::int32_t>(pred)), ref);
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }

  for (std::int32_t r = 0; r < p; ++r) {
    const auto& ring = view.rings[static_cast<std::size_t>(r)];
    for (std::int32_t i = 0; i < static_cast<std::int32_t>(ring.size());
         ++i) {
      const obs::TraceEvent& e = ring[static_cast<std::size_t>(i)];
      const EventRef ref{r, i};
      switch (e.kind) {
        case EventKind::kConsume: {
          EventRef pub;
          if (e.d != 0) {
            const auto it =
                pub_by_seq.find(std::make_tuple(e.a, r, e.d));
            if (it != pub_by_seq.end()) pub = it->second;
          }
          if (!pub.valid()) {
            const auto it = first_pub.find(std::make_tuple(e.a, e.b, r));
            if (it != first_pub.end()) pub = it->second;
          }
          if (pub.valid()) {
            out.edges.emplace_back(pub, ref);
          } else {
            out.unmatched_consumes.push_back(ref);
          }
          break;
        }
        case EventKind::kAddrPkgInstall: {
          const auto it = pkg_send.find(std::make_tuple(e.c, r, e.b));
          if (it != pkg_send.end()) {
            out.edges.emplace_back(it->second, ref);
          } else {
            out.unmatched_installs.push_back(ref);
          }
          break;
        }
        case EventKind::kFlagSend: {
          const auto it =
              first_gated_begin.find(std::make_pair(e.c, e.a));
          if (it != first_gated_begin.end()) {
            out.edges.emplace_back(ref, it->second);
          }
          break;
        }
        case EventKind::kResend: {
          // The retransmit was triggered by the reader's re-request whose
          // observed_seq was one below this put's sequence.
          const auto it = nack_by_seq.find(
              std::make_tuple(e.c, e.a,
                              static_cast<std::uint16_t>(e.d - 1)));
          if (it != nack_by_seq.end()) {
            out.edges.emplace_back(it->second, ref);
          }
          break;
        }
        default:
          break;
      }
    }
  }
  return out;
}

HbGraph::HbGraph(
    const TraceView& view,
    const std::vector<std::pair<EventRef, EventRef>>& cross_edges) {
  num_procs_ = view.num_procs();
  const auto p = static_cast<std::size_t>(num_procs_);
  clocks_.resize(p);
  std::vector<std::int32_t> sizes(p);
  for (std::size_t r = 0; r < p; ++r) {
    sizes[r] = static_cast<std::int32_t>(view.rings[r].size());
    clocks_[r].assign(static_cast<std::size_t>(sizes[r]) * p, 0);
    num_events_ += sizes[r];
  }

  // Cross-edge predecessors, bucketed by destination event.
  std::map<std::pair<std::int32_t, std::int32_t>, std::vector<EventRef>>
      preds;
  for (const auto& [src, dst] : cross_edges) {
    RAPID_CHECK(src.proc >= 0 && src.proc < num_procs_ &&
                    dst.proc >= 0 && dst.proc < num_procs_ &&
                    src.index >= 0 && src.index < sizes[static_cast<
                        std::size_t>(src.proc)] &&
                    dst.index >= 0 && dst.index < sizes[static_cast<
                        std::size_t>(dst.proc)],
                "happens-before edge references an event outside the trace");
    preds[{dst.proc, dst.index}].push_back(src);
  }

  // Specialized Kahn scan: each ring is already topologically sorted by
  // program order, so one cursor per ring suffices. A ring's next event is
  // ready when every cross predecessor has been processed; rounds repeat
  // until no cursor can advance. A full stall with events remaining means
  // the cross edges are cyclic (a corrupted trace).
  std::vector<std::int32_t> cursor(p, 0);
  std::int64_t processed = 0;
  bool advanced = true;
  while (advanced) {
    advanced = false;
    for (std::size_t r = 0; r < p; ++r) {
      while (cursor[r] < sizes[r]) {
        const std::int32_t i = cursor[r];
        const auto it = preds.find({static_cast<std::int32_t>(r), i});
        bool ready = true;
        if (it != preds.end()) {
          for (const EventRef& src : it->second) {
            if (src.index >= cursor[static_cast<std::size_t>(src.proc)]) {
              ready = false;
              break;
            }
          }
        }
        if (!ready) break;
        // clock(e) = join(program predecessor, cross predecessors), then
        // count e itself on its own ring.
        auto* clock = &clocks_[r][static_cast<std::size_t>(i) * p];
        if (i > 0) {
          const auto* prev =
              &clocks_[r][(static_cast<std::size_t>(i) - 1) * p];
          for (std::size_t q = 0; q < p; ++q) clock[q] = prev[q];
        }
        if (it != preds.end()) {
          for (const EventRef& src : it->second) {
            const auto* sc =
                &clocks_[static_cast<std::size_t>(src.proc)]
                        [static_cast<std::size_t>(src.index) * p];
            for (std::size_t q = 0; q < p; ++q) {
              if (sc[q] > clock[q]) clock[q] = sc[q];
            }
          }
        }
        clock[r] = i + 1;
        ++cursor[r];
        ++processed;
        advanced = true;
      }
    }
  }
  consistent_ = processed == num_events_;
}

bool HbGraph::happens_before(EventRef a, EventRef b) const {
  RAPID_CHECK(consistent_, "happens_before on an inconsistent trace");
  if (a == b) return false;
  const auto p = static_cast<std::size_t>(num_procs_);
  const std::int32_t reach =
      clocks_[static_cast<std::size_t>(b.proc)]
             [static_cast<std::size_t>(b.index) * p +
              static_cast<std::size_t>(a.proc)];
  return reach >= a.index + 1;
}

}  // namespace rapid::verify
