#include "rapid/verify/litmus.hpp"

#include <array>
#include <cstddef>
#include <set>
#include <utility>

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::verify {
namespace {

constexpr int kNumRegs = 4;

/// One store waiting in a thread's buffer. The vector is kept in program
/// order, so a release store is flush-eligible exactly when it is at the
/// front (every program-earlier store already flushed); a relaxed store can
/// flush from any position (store→store reordering).
struct Pending {
  std::int32_t var = 0;
  std::int32_t val = 0;
  bool release = false;
};

enum class ThreadStatus : std::uint8_t {
  kRunning = 0,
  kParked = 1,    // inside cv wait, mutex released
  kWaitLock = 2,  // notified, waiting to reacquire the cv's mutex
};

struct ThreadState {
  std::int32_t pc = 0;
  std::array<std::int32_t, kNumRegs> regs{};
  std::vector<Pending> buf;
  ThreadStatus status = ThreadStatus::kRunning;
  std::int32_t cv = -1;  // condvar parked on
  std::int32_t mu = -1;  // mutex to reacquire after wake
};

struct Machine {
  std::vector<std::int32_t> mem;
  std::vector<std::int32_t> owner;  // mutex -> thread id, -1 free
  std::vector<ThreadState> threads;
};

struct Step {
  std::string desc;
  Machine next;
};

std::string encode(const Machine& m) {
  std::string k;
  k.reserve(96);
  for (const std::int32_t v : m.mem) k += cat(v, ',');
  k += '|';
  for (const std::int32_t o : m.owner) k += cat(o, ',');
  for (const ThreadState& t : m.threads) {
    k += cat('|', t.pc, ';', static_cast<int>(t.status), ';', t.cv, ';',
             t.mu, ';');
    for (const std::int32_t r : t.regs) k += cat(r, ',');
    for (const Pending& s : t.buf) {
      k += cat('[', s.var, ':', s.val, ':', s.release ? 1 : 0, ']');
    }
  }
  return k;
}

class Explorer {
 public:
  explicit Explorer(const LitmusProgram& program) : p_(program) {}

  LitmusResult run() {
    result_.name = p_.name;
    result_.expect_clean = p_.expect_clean;
    Machine init;
    init.mem.assign(p_.var_names.size(), 0);
    init.owner.assign(static_cast<std::size_t>(p_.num_mutexes), -1);
    init.threads.resize(p_.threads.size());
    dfs(init);
    return std::move(result_);
  }

 private:
  static constexpr std::int64_t kMaxStates = 4'000'000;
  static constexpr std::size_t kMaxViolations = 3;

  const std::string& var(std::int32_t v) const {
    return p_.var_names[static_cast<std::size_t>(v)];
  }
  const std::string& tname(std::size_t t) const {
    return p_.threads[t].name;
  }

  bool terminal(const Machine& m) const {
    for (std::size_t t = 0; t < m.threads.size(); ++t) {
      const ThreadState& th = m.threads[t];
      if (th.status != ThreadStatus::kRunning || !th.buf.empty() ||
          th.pc < static_cast<std::int32_t>(p_.threads[t].code.size())) {
        return false;
      }
    }
    return true;
  }

  /// The value a load by thread `t` observes: its own latest pending store
  /// to the variable (store-to-load forwarding), else shared memory.
  static std::int32_t observe(const Machine& m, std::size_t t,
                              std::int32_t v) {
    const auto& buf = m.threads[t].buf;
    for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
      if (it->var == v) return it->val;
    }
    return m.mem[static_cast<std::size_t>(v)];
  }

  void enumerate(const Machine& m, std::vector<Step>& out) const {
    for (std::size_t t = 0; t < m.threads.size(); ++t) {
      const ThreadState& th = m.threads[t];
      // Flush transitions: relaxed stores from any position, release
      // stores only from the front (all earlier stores already visible).
      for (std::size_t i = 0; i < th.buf.size(); ++i) {
        const Pending& s = th.buf[i];
        if (s.release && i != 0) continue;
        Step step;
        step.desc = cat(tname(t), " flushes ", var(s.var), "=", s.val);
        step.next = m;
        step.next.mem[static_cast<std::size_t>(s.var)] = s.val;
        step.next.threads[t].buf.erase(
            step.next.threads[t].buf.begin() +
            static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(step));
      }
      if (th.status == ThreadStatus::kWaitLock) {
        if (m.owner[static_cast<std::size_t>(th.mu)] == -1) {
          Step step;
          step.desc = cat(tname(t), " wakes and reacquires the mutex");
          step.next = m;
          step.next.owner[static_cast<std::size_t>(th.mu)] =
              static_cast<std::int32_t>(t);
          step.next.threads[t].status = ThreadStatus::kRunning;
          step.next.threads[t].cv = -1;
          step.next.threads[t].mu = -1;
          out.push_back(std::move(step));
        }
        continue;
      }
      if (th.status != ThreadStatus::kRunning ||
          th.pc >= static_cast<std::int32_t>(p_.threads[t].code.size())) {
        continue;
      }
      const LitmusInstr& in =
          p_.threads[t].code[static_cast<std::size_t>(th.pc)];
      const bool buf_empty = th.buf.empty();
      Step step;
      step.next = m;
      ThreadState& nt = step.next.threads[t];
      switch (in.op) {
        case LitmusOp::kLoad: {
          const std::int32_t v = observe(m, t, in.var);
          nt.regs[static_cast<std::size_t>(in.reg)] = v;
          nt.pc++;
          step.desc = cat(tname(t), " loads ", var(in.var), " -> ", v);
          break;
        }
        case LitmusOp::kStore: {
          const std::int32_t v =
              in.value_from_reg
                  ? th.regs[static_cast<std::size_t>(in.reg)] + in.value
                  : in.value;
          if (in.order == MemOrder::kSeqCst) {
            if (!buf_empty) continue;  // full barrier: drain first
            step.next.mem[static_cast<std::size_t>(in.var)] = v;
            step.desc = cat(tname(t), " stores ", var(in.var), "=", v,
                            " (seq_cst)");
          } else {
            nt.buf.push_back(
                {in.var, v, in.order == MemOrder::kRelease});
            step.desc = cat(tname(t), " buffers ", var(in.var), "=", v,
                            in.order == MemOrder::kRelease ? " (release)"
                                                           : " (relaxed)");
          }
          nt.pc++;
          break;
        }
        case LitmusOp::kRmwAdd: {
          if (!buf_empty) continue;  // seq_cst RMW acts on memory directly
          const std::int32_t old =
              m.mem[static_cast<std::size_t>(in.var)];
          nt.regs[static_cast<std::size_t>(in.reg)] = old;
          step.next.mem[static_cast<std::size_t>(in.var)] =
              old + in.value;
          nt.pc++;
          step.desc = cat(tname(t), " fetch_add ", var(in.var), " ",
                          in.value >= 0 ? "+" : "", in.value, " -> ",
                          old + in.value);
          break;
        }
        case LitmusOp::kLock: {
          if (m.owner[static_cast<std::size_t>(in.var)] != -1) continue;
          step.next.owner[static_cast<std::size_t>(in.var)] =
              static_cast<std::int32_t>(t);
          nt.pc++;
          step.desc = cat(tname(t), " locks");
          break;
        }
        case LitmusOp::kUnlock: {
          // Unlock is a release: every buffered store flushes first.
          if (!buf_empty ||
              m.owner[static_cast<std::size_t>(in.var)] !=
                  static_cast<std::int32_t>(t)) {
            continue;
          }
          step.next.owner[static_cast<std::size_t>(in.var)] = -1;
          nt.pc++;
          step.desc = cat(tname(t), " unlocks");
          break;
        }
        case LitmusOp::kCvWait: {
          if (!buf_empty ||
              m.owner[static_cast<std::size_t>(in.value)] !=
                  static_cast<std::int32_t>(t)) {
            continue;
          }
          step.next.owner[static_cast<std::size_t>(in.value)] = -1;
          nt.status = ThreadStatus::kParked;
          nt.cv = in.var;
          nt.mu = in.value;
          nt.pc++;  // resumes past the wait after wake + reacquire
          step.desc = cat(tname(t), " parks on the condvar");
          break;
        }
        case LitmusOp::kNotifyAll: {
          for (std::size_t o = 0; o < step.next.threads.size(); ++o) {
            ThreadState& ot = step.next.threads[o];
            if (ot.status == ThreadStatus::kParked && ot.cv == in.var) {
              ot.status = ThreadStatus::kWaitLock;
            }
          }
          nt.pc++;
          step.desc = cat(tname(t), " notifies all");
          break;
        }
        case LitmusOp::kJumpIfEq:
        case LitmusOp::kJumpIfNe: {
          const bool eq =
              th.regs[static_cast<std::size_t>(in.reg)] == in.value;
          const bool taken = in.op == LitmusOp::kJumpIfEq ? eq : !eq;
          nt.pc = taken ? in.target : th.pc + 1;
          step.desc = cat(tname(t), taken ? " branches" : " falls through");
          break;
        }
      }
      out.push_back(std::move(step));
    }
  }

  void violation(std::string what, const Machine& m) {
    if (result_.violations.size() >= kMaxViolations) return;
    std::string msg = std::move(what);
    msg += "; final memory:";
    for (std::size_t v = 0; v < m.mem.size(); ++v) {
      msg += cat(' ', p_.var_names[v], '=', m.mem[v]);
    }
    msg += "; interleaving: ";
    for (std::size_t i = 0; i < path_.size(); ++i) {
      if (i > 0) msg += " -> ";
      msg += path_[i];
    }
    result_.violations.push_back(std::move(msg));
  }

  void dfs(const Machine& m) {
    if (aborted_) return;
    if (!visited_.insert(encode(m)).second) return;
    if (++result_.states_explored > kMaxStates) {
      aborted_ = true;
      result_.violations.push_back(
          cat("state space exceeded ", kMaxStates,
              " states — the litmus program is too large to enumerate"));
      return;
    }
    std::vector<Step> steps;
    enumerate(m, steps);
    if (steps.empty()) {
      if (terminal(m)) {
        if (p_.final_ok && !p_.final_ok(m.mem)) {
          violation(cat("property violated: ", p_.property), m);
        }
      } else {
        bool parked = false;
        std::string who;
        for (std::size_t t = 0; t < m.threads.size(); ++t) {
          if (m.threads[t].status == ThreadStatus::kParked) {
            parked = true;
            who = tname(t);
          }
        }
        violation(parked ? cat("lost wakeup: thread '", who,
                               "' is parked and every other thread "
                               "finished without notifying")
                         : std::string("deadlock: no thread can step"),
                  m);
      }
      return;
    }
    for (const Step& step : steps) {
      path_.push_back(step.desc);
      dfs(step.next);
      path_.pop_back();
      if (aborted_) return;
    }
  }

  const LitmusProgram& p_;
  LitmusResult result_;
  std::set<std::string> visited_;
  std::vector<std::string> path_;
  bool aborted_ = false;
};

// -- instruction builders ---------------------------------------------------

LitmusInstr ld(std::int32_t v, std::int32_t reg,
               MemOrder o = MemOrder::kSeqCst) {
  return {LitmusOp::kLoad, v, reg, 0, false, o, 0};
}
LitmusInstr st(std::int32_t v, std::int32_t imm, MemOrder o) {
  return {LitmusOp::kStore, v, 0, imm, false, o, 0};
}
LitmusInstr st_reg(std::int32_t v, std::int32_t reg, std::int32_t add,
                   MemOrder o) {
  return {LitmusOp::kStore, v, reg, add, true, o, 0};
}
LitmusInstr rmw(std::int32_t v, std::int32_t add, std::int32_t reg) {
  return {LitmusOp::kRmwAdd, v, reg, add, false, MemOrder::kSeqCst, 0};
}
LitmusInstr lock(std::int32_t m) {
  return {LitmusOp::kLock, m, 0, 0, false, MemOrder::kSeqCst, 0};
}
LitmusInstr unlock(std::int32_t m) {
  return {LitmusOp::kUnlock, m, 0, 0, false, MemOrder::kSeqCst, 0};
}
LitmusInstr cvwait(std::int32_t cv, std::int32_t m) {
  return {LitmusOp::kCvWait, cv, 0, m, false, MemOrder::kSeqCst, 0};
}
LitmusInstr notify(std::int32_t cv) {
  return {LitmusOp::kNotifyAll, cv, 0, 0, false, MemOrder::kSeqCst, 0};
}
LitmusInstr jeq(std::int32_t reg, std::int32_t val, std::int32_t target) {
  return {LitmusOp::kJumpIfEq, 0, reg, val, false, MemOrder::kSeqCst,
          target};
}
LitmusInstr jne(std::int32_t reg, std::int32_t val, std::int32_t target) {
  return {LitmusOp::kJumpIfNe, 0, reg, val, false, MemOrder::kSeqCst,
          target};
}

}  // namespace

LitmusResult run_litmus(const LitmusProgram& program) {
  RAPID_CHECK(!program.threads.empty(), "litmus program has no threads");
  for (const LitmusThread& t : program.threads) {
    for (const LitmusInstr& in : t.code) {
      RAPID_CHECK(in.reg >= 0 && in.reg < kNumRegs,
                  "litmus register out of range");
    }
  }
  return Explorer(program).run();
}

LitmusProgram doorbell_handshake(int weaken) {
  // vars: 0 = count_, 1 = sleepers_ (support/backoff.hpp Doorbell).
  constexpr std::int32_t kCount = 0, kSleepers = 1;
  LitmusProgram p;
  p.var_names = {"count", "sleepers"};
  p.num_mutexes = 1;
  p.num_condvars = 1;
  p.expect_clean = weaken == 0;
  p.final_ok = [](const std::vector<std::int32_t>& mem) {
    return mem[0] == 1 && mem[1] == 0;
  };
  p.property = "count == 1 and sleepers == 0 after both threads finish";

  LitmusThread ringer{"ringer", {}};
  if (weaken == 1) {
    p.name = "doorbell-weak-signal";
    p.description =
        "Doorbell with the ringer's count++ demoted to a relaxed "
        "load;store — the buffered count store lets the ringer read "
        "sleepers==0 while the waiter reads the stale count (Dekker "
        "store->load reordering): lost wakeup";
    ringer.code = {ld(kCount, 0, MemOrder::kRelaxed),
                   st_reg(kCount, 0, 1, MemOrder::kRelaxed),
                   ld(kSleepers, 1, MemOrder::kSeqCst),
                   jeq(1, 0, 7),
                   lock(0),
                   notify(0),
                   unlock(0)};
  } else {
    ringer.code = {rmw(kCount, 1, 0),
                   ld(kSleepers, 1, MemOrder::kSeqCst),
                   jeq(1, 0, 6),
                   lock(0),
                   notify(0),
                   unlock(0)};
  }

  LitmusThread waiter{"waiter", {}};
  if (weaken == 2) {
    p.name = "doorbell-weak-register";
    p.description =
        "Doorbell with the waiter's sleepers++ demoted to a relaxed "
        "load;store — the ringer reads sleepers==0 before the waiter's "
        "buffered registration flushes, the waiter re-checks the stale "
        "count and parks: lost wakeup (the symmetric Dekker loss)";
    waiter.code = {ld(kSleepers, 0, MemOrder::kRelaxed),
                   st_reg(kSleepers, 0, 1, MemOrder::kRelaxed),
                   lock(0),
                   ld(kCount, 1, MemOrder::kSeqCst),
                   jne(1, 0, 6),
                   cvwait(0, 0),
                   unlock(0),
                   rmw(kSleepers, -1, 2)};
  } else {
    waiter.code = {rmw(kSleepers, 1, 0),
                   lock(0),
                   ld(kCount, 1, MemOrder::kSeqCst),
                   jne(1, 0, 5),
                   cvwait(0, 0),
                   unlock(0),
                   rmw(kSleepers, -1, 2)};
  }
  if (weaken == 0) {
    p.name = "doorbell-strong";
    p.description =
        "Doorbell as shipped: seq_cst count++ / sleepers++ on both sides "
        "with the mutex-protected recheck — the ringer sees the "
        "registration or the waiter sees the new count, never neither";
  }
  p.threads = {std::move(ringer), std::move(waiter)};
  return p;
}

LitmusProgram mailbox_handoff(int weaken) {
  // vars: 0 = mailbox occupancy, 1 = mailbox_pending flag
  // (threaded_executor Shared::mailbox / mailbox_pending).
  constexpr std::int32_t kBox = 0, kPending = 1;
  LitmusProgram p;
  p.var_names = {"box", "pending"};
  p.num_mutexes = 1;
  p.expect_clean = weaken == 0;
  p.final_ok = [](const std::vector<std::int32_t>& mem) {
    return !(mem[0] > 0 && mem[1] == 0);
  };
  p.property =
      "an undrained package always leaves the pending flag raised (box > "
      "0 implies pending != 0)";

  const LitmusThread sender1{"sender1",
                             {lock(0), ld(kBox, 0, MemOrder::kRelaxed),
                              st_reg(kBox, 0, 1, MemOrder::kRelaxed),
                              rmw(kPending, 1, 1), unlock(0)}};
  LitmusThread sender2 = sender1;
  sender2.name = "sender2";

  LitmusThread receiver{"receiver", {}};
  if (weaken == 1) {
    p.name = "mailbox-weak-reset";
    p.description =
        "Mailbox drain with the pending reset moved AFTER the unlock — a "
        "sender that pushes between the drain and the reset has its flag "
        "wiped, stranding the package with pending == 0";
    receiver.code = {ld(kPending, 0, MemOrder::kAcquire),
                     jeq(0, 0, 7),
                     lock(0),
                     ld(kBox, 1, MemOrder::kRelaxed),
                     st(kBox, 0, MemOrder::kRelaxed),
                     unlock(0),
                     st(kPending, 0, MemOrder::kRelaxed)};
  } else {
    p.name = "mailbox-strong";
    p.description =
        "Mailbox drain as shipped: the pending flag is reset inside the "
        "critical section that drains the slots, so any later push "
        "re-raises it (service_ra_cq)";
    receiver.code = {ld(kPending, 0, MemOrder::kAcquire),
                     jeq(0, 0, 7),
                     lock(0),
                     ld(kBox, 1, MemOrder::kRelaxed),
                     st(kBox, 0, MemOrder::kRelaxed),
                     st(kPending, 0, MemOrder::kRelaxed),
                     unlock(0)};
  }
  p.threads = {sender1, std::move(sender2), std::move(receiver)};
  return p;
}

LitmusProgram put_publication(int weaken) {
  // vars: 0 = payload (standing in for content+crc), 1 = version,
  // 2 = put_seq, 3..5 = the reader's observations written back so the
  // final-state predicate can see them.
  constexpr std::int32_t kPayload = 0, kVersion = 1, kSeq = 2;
  constexpr std::int32_t kObsSeq = 3, kObsVersion = 4, kObsPayload = 5;
  LitmusProgram p;
  p.var_names = {"payload", "version",     "seq",
                 "obs_seq", "obs_version", "obs_payload"};
  p.expect_clean = weaken == 0;
  p.final_ok = [](const std::vector<std::int32_t>& mem) {
    return mem[3] != 1 || (mem[4] == 1 && mem[5] == 1);
  };
  p.property =
      "a reader that observes put_seq == 1 also observes the payload and "
      "version of that put (no torn publication)";

  LitmusThread owner{"owner",
                     {st(kPayload, 1, MemOrder::kRelaxed),
                      st(kVersion, 1, MemOrder::kRelease),
                      st(kSeq, 1,
                         weaken == 1 ? MemOrder::kRelaxed
                                     : MemOrder::kRelease)}};
  const LitmusThread reader{"reader",
                            {ld(kSeq, 0, MemOrder::kAcquire),
                             ld(kVersion, 1, MemOrder::kAcquire),
                             ld(kPayload, 2, MemOrder::kRelaxed),
                             st_reg(kObsSeq, 0, 0, MemOrder::kSeqCst),
                             st_reg(kObsVersion, 1, 0, MemOrder::kSeqCst),
                             st_reg(kObsPayload, 2, 0, MemOrder::kSeqCst)}};
  if (weaken == 1) {
    p.name = "publication-weak-seq";
    p.description =
        "Content put with the put_seq store demoted to relaxed — the "
        "sequence can flush before the payload/version stores it is "
        "supposed to publish: torn publication";
  } else {
    p.name = "publication-strong";
    p.description =
        "Content put as shipped: crc/payload relaxed, then version "
        "release, then put_seq release — a reader acquiring the sequence "
        "sees the whole put (threaded_executor transmit)";
  }
  p.threads = {std::move(owner), reader};
  return p;
}

std::vector<LitmusProgram> all_litmus_programs() {
  std::vector<LitmusProgram> out;
  out.push_back(doorbell_handshake(0));
  out.push_back(doorbell_handshake(1));
  out.push_back(doorbell_handshake(2));
  out.push_back(mailbox_handoff(0));
  out.push_back(mailbox_handoff(1));
  out.push_back(put_publication(0));
  out.push_back(put_publication(1));
  return out;
}

std::vector<LitmusResult> run_all_litmus() {
  std::vector<LitmusResult> out;
  for (const LitmusProgram& p : all_litmus_programs()) {
    out.push_back(run_litmus(p));
  }
  return out;
}

}  // namespace rapid::verify
