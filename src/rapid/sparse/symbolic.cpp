#include "rapid/sparse/symbolic.hpp"

#include <algorithm>
#include <bit>

#include "rapid/sparse/etree.hpp"
#include "rapid/support/check.hpp"

namespace rapid::sparse {

namespace {

/// Column-merge symbolic Cholesky on a symmetric pattern `sym` (both
/// triangles present, full diagonal). struct(L_j) = rows ≥ j of column j of
/// A, merged with struct(L_c) \ {c} for every etree child c of j.
SymbolicFactor symbolic_cholesky_symmetric(const CscPattern& sym) {
  const Index n = sym.n_cols;
  SymbolicFactor out;
  out.etree_parent = elimination_tree(sym);

  // Child lists.
  std::vector<std::vector<Index>> children(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) {
    if (out.etree_parent[v] != -1) children[out.etree_parent[v]].push_back(v);
  }

  std::vector<std::vector<Index>> l_cols(static_cast<std::size_t>(n));
  std::vector<Index> mark(static_cast<std::size_t>(n), -1);
  for (Index j = 0; j < n; ++j) {
    auto& col = l_cols[j];
    mark[j] = j;
    col.push_back(j);
    for (Index k = sym.col_ptr[j]; k < sym.col_ptr[j + 1]; ++k) {
      const Index i = sym.row_idx[k];
      if (i > j && mark[i] != j) {
        mark[i] = j;
        col.push_back(i);
      }
    }
    for (Index c : children[j]) {
      for (Index i : l_cols[c]) {
        if (i > j && mark[i] != j) {
          mark[i] = j;
          col.push_back(i);
        }
      }
      // The child's pattern is only needed by its parent; release it to
      // keep symbolic memory O(|L|) rather than O(n·height).
      l_cols[c].shrink_to_fit();
    }
    std::sort(col.begin(), col.end());
  }

  out.l_pattern.n_rows = n;
  out.l_pattern.n_cols = n;
  out.l_pattern.col_ptr.push_back(0);
  for (Index j = 0; j < n; ++j) {
    out.l_pattern.row_idx.insert(out.l_pattern.row_idx.end(),
                                 l_cols[j].begin(), l_cols[j].end());
    out.l_pattern.col_ptr.push_back(
        static_cast<Index>(out.l_pattern.row_idx.size()));
  }
  return out;
}

}  // namespace

SymbolicFactor symbolic_cholesky(const CscPattern& a) {
  RAPID_CHECK(a.n_rows == a.n_cols, "symbolic_cholesky needs square pattern");
  const CscPattern sym =
      a.union_with(a.transposed()).with_full_diagonal();
  return symbolic_cholesky_symmetric(sym);
}

SymbolicFactor symbolic_lu_static(const CscPattern& a) {
  return symbolic_cholesky(a);
}

CscPattern ata_pattern(const CscPattern& a) {
  // Column j of AᵀA has a nonzero at row i iff columns i and j of A share a
  // row. Build via the transpose: rows of A indexed by column lists.
  const CscPattern at = a.transposed();
  const Index n = a.n_cols;
  CscPattern out;
  out.n_rows = n;
  out.n_cols = n;
  out.col_ptr.push_back(0);
  std::vector<Index> mark(static_cast<std::size_t>(n), -1);
  std::vector<Index> col;
  for (Index j = 0; j < n; ++j) {
    col.clear();
    for (Index k = a.col_ptr[j]; k < a.col_ptr[j + 1]; ++k) {
      const Index r = a.row_idx[k];
      for (Index k2 = at.col_ptr[r]; k2 < at.col_ptr[r + 1]; ++k2) {
        const Index i = at.row_idx[k2];
        if (mark[i] != j) {
          mark[i] = j;
          col.push_back(i);
        }
      }
    }
    std::sort(col.begin(), col.end());
    out.row_idx.insert(out.row_idx.end(), col.begin(), col.end());
    out.col_ptr.push_back(static_cast<Index>(out.row_idx.size()));
  }
  return out;
}

SymbolicFactor symbolic_lu_george_ng(const CscPattern& a) {
  return symbolic_cholesky(ata_pattern(a));
}

CscPattern symbolic_lu_bound_pivoting(const CscPattern& a) {
  RAPID_CHECK(a.n_rows == a.n_cols, "LU bound needs a square pattern");
  const Index n = a.n_cols;
  const Index words = (n + 63) / 64;
  // rows[i] = bitset over columns of the current structural bound of row i.
  std::vector<std::uint64_t> rows(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(words), 0);
  auto set_bit = [&](Index i, Index j) {
    rows[static_cast<std::size_t>(i) * words + j / 64] |= 1ull << (j % 64);
  };
  auto test_bit = [&](Index i, Index j) {
    return (rows[static_cast<std::size_t>(i) * words + j / 64] >>
            (j % 64)) & 1ull;
  };
  for (Index j = 0; j < n; ++j) {
    set_bit(j, j);  // structurally nonzero diagonal assumed/added
    for (Index k = a.col_ptr[j]; k < a.col_ptr[j + 1]; ++k) {
      set_bit(a.row_idx[k], j);
    }
  }

  // Closure: at step k the pivot may be any candidate row (bit k set), and
  // the subsequent full-row swap can relocate every value a candidate row
  // holds — including already-computed L columns — to any other candidate
  // position. All candidates therefore inherit the union of the candidates'
  // FULL patterns. A row position i is final after step i (later steps only
  // touch rows > k), so the final bit state is the bound on struct(L + U).
  std::vector<std::uint64_t> unioned(static_cast<std::size_t>(words));
  std::vector<Index> candidates;
  for (Index k = 0; k < n; ++k) {
    candidates.clear();
    for (Index i = k; i < n; ++i) {
      if (test_bit(i, k)) candidates.push_back(i);
    }
    RAPID_CHECK(!candidates.empty(), "diagonal lost during closure");
    std::fill(unioned.begin(), unioned.end(), 0);
    for (Index i : candidates) {
      const std::uint64_t* row =
          rows.data() + static_cast<std::size_t>(i) * words;
      for (Index w = 0; w < words; ++w) unioned[w] |= row[w];
    }
    for (Index i : candidates) {
      std::uint64_t* row = rows.data() + static_cast<std::size_t>(i) * words;
      for (Index w = 0; w < words; ++w) row[w] |= unioned[w];
    }
  }
  // Emit the final bit state as a CSC pattern.
  std::vector<std::vector<Index>> cols(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    const std::uint64_t* row =
        rows.data() + static_cast<std::size_t>(i) * words;
    for (Index w = 0; w < words; ++w) {
      std::uint64_t bits = row[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        const Index j = w * 64 + b;
        if (j < n) cols[j].push_back(i);
      }
    }
  }
  CscPattern out;
  out.n_rows = n;
  out.n_cols = n;
  out.col_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (Index j = 0; j < n; ++j) {
    std::sort(cols[j].begin(), cols[j].end());
    out.row_idx.insert(out.row_idx.end(), cols[j].begin(), cols[j].end());
    out.col_ptr[j + 1] = static_cast<Index>(out.row_idx.size());
  }
  return out;
}

std::vector<Index> column_counts(const SymbolicFactor& f) {
  std::vector<Index> counts(static_cast<std::size_t>(f.l_pattern.n_cols));
  for (Index j = 0; j < f.l_pattern.n_cols; ++j) {
    counts[j] = f.l_pattern.col_ptr[j + 1] - f.l_pattern.col_ptr[j];
  }
  return counts;
}

}  // namespace rapid::sparse
