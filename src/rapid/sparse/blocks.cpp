#include "rapid/sparse/blocks.hpp"

#include <algorithm>
#include <map>

#include "rapid/support/check.hpp"

namespace rapid::sparse {

BlockLayout::BlockLayout(Index n_, Index block_size_)
    : n(n_), block_size(block_size_) {
  RAPID_CHECK(n >= 0, "negative n");
  RAPID_CHECK(block_size > 0, "block_size must be positive");
  num_blocks = (n + block_size - 1) / block_size;
}

Index BlockLayout::block_of(Index index) const {
  RAPID_CHECK(index >= 0 && index < n, "index out of range");
  return index / block_size;
}

Index BlockLayout::block_begin(Index block) const {
  RAPID_CHECK(block >= 0 && block < num_blocks, "block out of range");
  return block * block_size;
}

Index BlockLayout::block_end(Index block) const {
  return std::min(n, block_begin(block) + block_size);
}

Index BlockLayout::block_width(Index block) const {
  return block_end(block) - block_begin(block);
}

CscPattern project_to_blocks(const CscPattern& scalar, const BlockLayout& rows,
                             const BlockLayout& cols) {
  RAPID_CHECK(scalar.n_rows == rows.n && scalar.n_cols == cols.n,
              "layout does not match pattern shape");
  CscPattern out;
  out.n_rows = rows.num_blocks;
  out.n_cols = cols.num_blocks;
  out.col_ptr.push_back(0);
  std::vector<Index> mark(static_cast<std::size_t>(rows.num_blocks), -1);
  std::vector<Index> col;
  for (Index bj = 0; bj < cols.num_blocks; ++bj) {
    col.clear();
    for (Index j = cols.block_begin(bj); j < cols.block_end(bj); ++j) {
      for (Index k = scalar.col_ptr[j]; k < scalar.col_ptr[j + 1]; ++k) {
        const Index bi = rows.block_of(scalar.row_idx[k]);
        if (mark[bi] != bj) {
          mark[bi] = bj;
          col.push_back(bi);
        }
      }
    }
    std::sort(col.begin(), col.end());
    out.row_idx.insert(out.row_idx.end(), col.begin(), col.end());
    out.col_ptr.push_back(static_cast<Index>(out.row_idx.size()));
  }
  return out;
}

std::vector<std::vector<Index>> block_nnz_counts(const CscPattern& scalar,
                                                 const BlockLayout& rows,
                                                 const BlockLayout& cols) {
  RAPID_CHECK(scalar.n_rows == rows.n && scalar.n_cols == cols.n,
              "layout does not match pattern shape");
  std::vector<std::vector<Index>> counts(
      static_cast<std::size_t>(rows.num_blocks),
      std::vector<Index>(static_cast<std::size_t>(cols.num_blocks), 0));
  for (Index j = 0; j < scalar.n_cols; ++j) {
    const Index bj = cols.block_of(j);
    for (Index k = scalar.col_ptr[j]; k < scalar.col_ptr[j + 1]; ++k) {
      ++counts[rows.block_of(scalar.row_idx[k])][bj];
    }
  }
  return counts;
}

}  // namespace rapid::sparse
