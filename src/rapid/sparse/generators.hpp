// Synthetic matrix generators standing in for the paper's Harwell-Boeing
// inputs (see DESIGN.md §2). The SPD generators model BCSSTK15/24/33-style
// structural-engineering matrices (FEM grid discretizations, banded after
// reordering); the unsymmetric generator models the "goodwin" fluid-dynamics
// matrix (convection-diffusion, structurally unsymmetric, pivoting-relevant).
#pragma once

#include "rapid/sparse/csc.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::sparse {

/// 2-D grid Laplacian on an nx × ny grid. stencil_points must be 5 or 9.
/// Diagonally dominant SPD (diagonal = degree + 1).
CscMatrix grid_laplacian_2d(Index nx, Index ny, int stencil_points = 5);

/// 3-D 7-point grid Laplacian on nx × ny × nz; SPD.
CscMatrix grid_laplacian_3d(Index nx, Index ny, Index nz);

/// Unsymmetric convection-diffusion operator on an nx × ny grid:
/// 5-point diffusion plus upwinded convection with random per-cell wind,
/// plus structural asymmetry (each off-diagonal coupling independently
/// dropped with probability drop_prob). Values vary over orders of
/// magnitude so partial pivoting actually reorders rows.
CscMatrix convection_diffusion_2d(Index nx, Index ny, double drop_prob,
                                  Rng& rng);

/// Random banded unsymmetric matrix: entries within |i-j| <= bandwidth kept
/// with probability density; strong diagonal so reference LU stays stable
/// while partial pivoting still permutes rows.
CscMatrix random_banded(Index n, Index bandwidth, double density, Rng& rng);

/// Returns A shifted to strict diagonal dominance:
/// out = A + (max_row_offdiag_sum + 1) I restricted to A's pattern plus a
/// full diagonal. Used to make arbitrary symmetric patterns SPD.
CscMatrix make_diagonally_dominant(const CscMatrix& a);

/// A deterministic right-hand side b = A * ones, so the exact solution of
/// A x = b is the all-ones vector. Used by solver round-trip tests.
std::vector<double> rhs_for_unit_solution(const CscMatrix& a);

}  // namespace rapid::sparse
