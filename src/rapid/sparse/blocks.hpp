// Block partitioning: projects a scalar fill pattern onto a uniform block
// grid. The paper's 2-D block Cholesky treats each nonzero block of the
// factor as a data object; the 1-D column-block LU treats each column block
// as one. Both builders in rapid::num consume BlockLayout + BlockPattern.
#pragma once

#include <vector>

#include "rapid/sparse/csc.hpp"

namespace rapid::sparse {

/// Uniform partition of [0, n) into blocks of width `block_size` (the last
/// block may be narrower).
struct BlockLayout {
  Index n = 0;
  Index block_size = 0;
  Index num_blocks = 0;

  BlockLayout() = default;
  BlockLayout(Index n_, Index block_size_);

  Index block_of(Index index) const;
  Index block_begin(Index block) const;
  Index block_end(Index block) const;  // exclusive
  Index block_width(Index block) const;
};

/// Block-level projection of a scalar pattern: block (I, J) is present iff
/// some scalar (i, j) with i in block I, j in block J is present.
/// Result is a CscPattern over the num_blocks × num_blocks grid.
CscPattern project_to_blocks(const CscPattern& scalar,
                             const BlockLayout& rows,
                             const BlockLayout& cols);

/// Scalar nnz count per block for a pattern projection — used to size the
/// data objects (a block data object stores only its structural nonzeros,
/// matching RAPID's irregular object sizes).
std::vector<std::vector<Index>> block_nnz_counts(const CscPattern& scalar,
                                                 const BlockLayout& rows,
                                                 const BlockLayout& cols);

}  // namespace rapid::sparse
