// Matrix Market (.mtx) I/O, so downstream users can run the pipeline on
// their own matrices (including the original Harwell-Boeing/SuiteSparse
// instances the paper used, converted to Matrix Market form).
//
// Supported: `matrix coordinate real|integer|pattern general|symmetric`.
// Pattern entries get value 1.0; symmetric files are expanded to both
// triangles. Writing always emits `coordinate real general`.
#pragma once

#include <iosfwd>
#include <string>

#include "rapid/sparse/csc.hpp"

namespace rapid::sparse {

/// Parses a Matrix Market stream. Throws rapid::Error with a line-numbered
/// message on malformed input.
CscMatrix read_matrix_market(std::istream& in);

/// Convenience: open + parse a file.
CscMatrix read_matrix_market_file(const std::string& path);

/// Serializes in coordinate-real-general form (1-based indices).
void write_matrix_market(std::ostream& out, const CscMatrix& matrix);

void write_matrix_market_file(const std::string& path,
                              const CscMatrix& matrix);

}  // namespace rapid::sparse
