#include "rapid/sparse/csc.hpp"

#include <algorithm>
#include <cmath>

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::sparse {

void CscPattern::validate() const {
  RAPID_CHECK(n_rows >= 0 && n_cols >= 0, "negative dimensions");
  RAPID_CHECK(static_cast<Index>(col_ptr.size()) == n_cols + 1,
              cat("col_ptr size ", col_ptr.size(), " != n_cols+1 ",
                  n_cols + 1));
  RAPID_CHECK(col_ptr.front() == 0, "col_ptr must start at 0");
  RAPID_CHECK(col_ptr.back() == nnz(), "col_ptr must end at nnz");
  for (Index j = 0; j < n_cols; ++j) {
    RAPID_CHECK(col_ptr[j] <= col_ptr[j + 1],
                cat("col_ptr not monotone at column ", j));
    for (Index k = col_ptr[j]; k < col_ptr[j + 1]; ++k) {
      RAPID_CHECK(row_idx[k] >= 0 && row_idx[k] < n_rows,
                  cat("row index out of range in column ", j));
      if (k > col_ptr[j]) {
        RAPID_CHECK(row_idx[k - 1] < row_idx[k],
                    cat("rows not sorted/unique in column ", j));
      }
    }
  }
}

bool CscPattern::contains(Index row, Index col) const {
  RAPID_CHECK(col >= 0 && col < n_cols, "column out of range");
  const auto begin = row_idx.begin() + col_ptr[col];
  const auto end = row_idx.begin() + col_ptr[col + 1];
  return std::binary_search(begin, end, row);
}

CscPattern CscPattern::transposed() const {
  CscPattern out;
  out.n_rows = n_cols;
  out.n_cols = n_rows;
  out.col_ptr.assign(static_cast<std::size_t>(n_rows) + 1, 0);
  out.row_idx.resize(row_idx.size());
  for (Index k = 0; k < nnz(); ++k) {
    ++out.col_ptr[row_idx[k] + 1];
  }
  for (Index i = 0; i < n_rows; ++i) {
    out.col_ptr[i + 1] += out.col_ptr[i];
  }
  std::vector<Index> next(out.col_ptr.begin(), out.col_ptr.end() - 1);
  for (Index j = 0; j < n_cols; ++j) {
    for (Index k = col_ptr[j]; k < col_ptr[j + 1]; ++k) {
      out.row_idx[next[row_idx[k]]++] = j;
    }
  }
  return out;
}

CscPattern CscPattern::union_with(const CscPattern& other) const {
  RAPID_CHECK(n_rows == other.n_rows && n_cols == other.n_cols,
              "union_with: shape mismatch");
  CscPattern out;
  out.n_rows = n_rows;
  out.n_cols = n_cols;
  out.col_ptr.reserve(static_cast<std::size_t>(n_cols) + 1);
  out.col_ptr.push_back(0);
  out.row_idx.reserve(row_idx.size() + other.row_idx.size());
  for (Index j = 0; j < n_cols; ++j) {
    std::set_union(row_idx.begin() + col_ptr[j],
                   row_idx.begin() + col_ptr[j + 1],
                   other.row_idx.begin() + other.col_ptr[j],
                   other.row_idx.begin() + other.col_ptr[j + 1],
                   std::back_inserter(out.row_idx));
    out.col_ptr.push_back(static_cast<Index>(out.row_idx.size()));
  }
  return out;
}

CscPattern CscPattern::lower_triangle() const {
  CscPattern out;
  out.n_rows = n_rows;
  out.n_cols = n_cols;
  out.col_ptr.push_back(0);
  for (Index j = 0; j < n_cols; ++j) {
    for (Index k = col_ptr[j]; k < col_ptr[j + 1]; ++k) {
      if (row_idx[k] >= j) out.row_idx.push_back(row_idx[k]);
    }
    out.col_ptr.push_back(static_cast<Index>(out.row_idx.size()));
  }
  return out;
}

CscPattern CscPattern::with_full_diagonal() const {
  CscPattern out;
  out.n_rows = n_rows;
  out.n_cols = n_cols;
  out.col_ptr.push_back(0);
  for (Index j = 0; j < n_cols; ++j) {
    bool seen_diag = false;
    for (Index k = col_ptr[j]; k < col_ptr[j + 1]; ++k) {
      if (!seen_diag && row_idx[k] > j && j < n_rows) {
        out.row_idx.push_back(j);
        seen_diag = true;
      }
      if (row_idx[k] == j) seen_diag = true;
      out.row_idx.push_back(row_idx[k]);
    }
    if (!seen_diag && j < n_rows) out.row_idx.push_back(j);
    out.col_ptr.push_back(static_cast<Index>(out.row_idx.size()));
  }
  return out;
}

void CscMatrix::validate() const {
  pattern.validate();
  RAPID_CHECK(values.size() == static_cast<std::size_t>(pattern.nnz()),
              "values size != nnz");
}

double CscMatrix::at(Index row, Index col) const {
  RAPID_CHECK(col >= 0 && col < n_cols(), "column out of range");
  const auto begin = pattern.row_idx.begin() + pattern.col_ptr[col];
  const auto end = pattern.row_idx.begin() + pattern.col_ptr[col + 1];
  const auto it = std::lower_bound(begin, end, row);
  if (it == end || *it != row) return 0.0;
  return values[static_cast<std::size_t>(it - pattern.row_idx.begin())];
}

std::vector<double> CscMatrix::multiply(const std::vector<double>& x) const {
  RAPID_CHECK(static_cast<Index>(x.size()) == n_cols(),
              "multiply: size mismatch");
  std::vector<double> y(static_cast<std::size_t>(n_rows()), 0.0);
  for (Index j = 0; j < n_cols(); ++j) {
    const double xj = x[j];
    for (Index k = pattern.col_ptr[j]; k < pattern.col_ptr[j + 1]; ++k) {
      y[pattern.row_idx[k]] += values[k] * xj;
    }
  }
  return y;
}

std::vector<double> CscMatrix::multiply_transpose(
    const std::vector<double>& x) const {
  RAPID_CHECK(static_cast<Index>(x.size()) == n_rows(),
              "multiply_transpose: size mismatch");
  std::vector<double> y(static_cast<std::size_t>(n_cols()), 0.0);
  for (Index j = 0; j < n_cols(); ++j) {
    double acc = 0.0;
    for (Index k = pattern.col_ptr[j]; k < pattern.col_ptr[j + 1]; ++k) {
      acc += values[k] * x[pattern.row_idx[k]];
    }
    y[j] = acc;
  }
  return y;
}

std::vector<double> CscMatrix::to_dense() const {
  std::vector<double> dense(
      static_cast<std::size_t>(n_rows()) * static_cast<std::size_t>(n_cols()),
      0.0);
  for (Index j = 0; j < n_cols(); ++j) {
    for (Index k = pattern.col_ptr[j]; k < pattern.col_ptr[j + 1]; ++k) {
      dense[static_cast<std::size_t>(j) * n_rows() + pattern.row_idx[k]] =
          values[k];
    }
  }
  return dense;
}

CscMatrix CscMatrix::permuted_symmetric(const std::vector<Index>& perm) const {
  RAPID_CHECK(n_rows() == n_cols(), "permuted_symmetric needs square matrix");
  const Index n = n_cols();
  RAPID_CHECK(static_cast<Index>(perm.size()) == n, "perm size mismatch");
  std::vector<Index> inv(static_cast<std::size_t>(n), -1);
  for (Index i = 0; i < n; ++i) {
    RAPID_CHECK(perm[i] >= 0 && perm[i] < n && inv[perm[i]] == -1,
                "perm is not a permutation");
    inv[perm[i]] = i;
  }
  // Build triplets in the permuted frame, then compress.
  struct Entry {
    Index row;
    double value;
  };
  std::vector<std::vector<Entry>> cols(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) {
    const Index new_j = inv[j];
    for (Index k = pattern.col_ptr[j]; k < pattern.col_ptr[j + 1]; ++k) {
      cols[new_j].push_back(Entry{inv[pattern.row_idx[k]], values[k]});
    }
  }
  CscMatrix out;
  out.pattern.n_rows = n;
  out.pattern.n_cols = n;
  out.pattern.col_ptr.push_back(0);
  for (Index j = 0; j < n; ++j) {
    std::sort(cols[j].begin(), cols[j].end(),
              [](const Entry& a, const Entry& b) { return a.row < b.row; });
    for (const Entry& e : cols[j]) {
      out.pattern.row_idx.push_back(e.row);
      out.values.push_back(e.value);
    }
    out.pattern.col_ptr.push_back(static_cast<Index>(out.values.size()));
  }
  return out;
}

double CscMatrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : values) acc += v * v;
  return std::sqrt(acc);
}

CscPattern make_empty_pattern(Index n_rows, Index n_cols) {
  CscPattern p;
  p.n_rows = n_rows;
  p.n_cols = n_cols;
  p.col_ptr.assign(static_cast<std::size_t>(n_cols) + 1, 0);
  return p;
}

}  // namespace rapid::sparse
