#include "rapid/sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "rapid/sparse/coo.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::sparse {

namespace {

std::string lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return text;
}

}  // namespace

CscMatrix read_matrix_market(std::istream& in) {
  std::string line;
  int line_no = 0;
  // Header.
  RAPID_CHECK(std::getline(in, line), "empty Matrix Market stream");
  ++line_no;
  std::istringstream header(lower(line));
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  RAPID_CHECK(banner == "%%matrixmarket",
              cat("line 1: expected %%MatrixMarket banner, got '", line, "'"));
  RAPID_CHECK(object == "matrix", cat("unsupported object '", object, "'"));
  RAPID_CHECK(format == "coordinate",
              cat("unsupported format '", format, "' (only coordinate)"));
  RAPID_CHECK(field == "real" || field == "integer" || field == "pattern",
              cat("unsupported field '", field, "'"));
  RAPID_CHECK(symmetry == "general" || symmetry == "symmetric",
              cat("unsupported symmetry '", symmetry, "'"));
  const bool pattern_only = field == "pattern";
  const bool symmetric = symmetry == "symmetric";

  // Skip comments, read the size line.
  Index n_rows = 0, n_cols = 0;
  long long nnz = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream sizes(line);
    RAPID_CHECK(static_cast<bool>(sizes >> n_rows >> n_cols >> nnz),
                cat("line ", line_no, ": malformed size line '", line, "'"));
    break;
  }
  RAPID_CHECK(n_rows > 0 && n_cols > 0,
              cat("line ", line_no, ": missing or empty size line"));

  CooBuilder coo(n_rows, n_cols);
  long long seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    long long row = 0, col = 0;
    double value = 1.0;
    RAPID_CHECK(static_cast<bool>(entry >> row >> col),
                cat("line ", line_no, ": malformed entry '", line, "'"));
    if (!pattern_only) {
      RAPID_CHECK(static_cast<bool>(entry >> value),
                  cat("line ", line_no, ": missing value in '", line, "'"));
    }
    RAPID_CHECK(row >= 1 && row <= n_rows && col >= 1 && col <= n_cols,
                cat("line ", line_no, ": index out of range in '", line, "'"));
    coo.add(static_cast<Index>(row - 1), static_cast<Index>(col - 1), value);
    if (symmetric && row != col) {
      coo.add(static_cast<Index>(col - 1), static_cast<Index>(row - 1),
              value);
    }
    ++seen;
  }
  RAPID_CHECK(seen == nnz,
              cat("expected ", nnz, " entries, found ", seen));
  return coo.to_csc();
}

CscMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  RAPID_CHECK(in.good(), cat("cannot open '", path, "'"));
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CscMatrix& matrix) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by rapid97\n";
  out << matrix.n_rows() << " " << matrix.n_cols() << " " << matrix.nnz()
      << "\n";
  out.precision(17);
  for (Index j = 0; j < matrix.n_cols(); ++j) {
    for (Index k = matrix.pattern.col_ptr[j]; k < matrix.pattern.col_ptr[j + 1];
         ++k) {
      out << (matrix.pattern.row_idx[k] + 1) << " " << (j + 1) << " "
          << matrix.values[k] << "\n";
    }
  }
  RAPID_CHECK(out.good(), "write failure");
}

void write_matrix_market_file(const std::string& path,
                              const CscMatrix& matrix) {
  std::ofstream out(path);
  RAPID_CHECK(out.good(), cat("cannot open '", path, "' for writing"));
  write_matrix_market(out, matrix);
}

}  // namespace rapid::sparse
