#include "rapid/sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

#include "rapid/sparse/coo.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::sparse {

namespace {

std::string lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return text;
}

}  // namespace

CscMatrix read_matrix_market(std::istream& in) {
  std::string line;
  int line_no = 0;
  // Header.
  RAPID_CHECK(std::getline(in, line), "empty Matrix Market stream");
  ++line_no;
  std::istringstream header(lower(line));
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  RAPID_CHECK(banner == "%%matrixmarket",
              cat("line 1: expected %%MatrixMarket banner, got '", line, "'"));
  RAPID_CHECK(object == "matrix", cat("unsupported object '", object, "'"));
  RAPID_CHECK(format == "coordinate",
              cat("unsupported format '", format, "' (only coordinate)"));
  RAPID_CHECK(field == "real" || field == "integer" || field == "pattern",
              cat("unsupported field '", field, "'"));
  RAPID_CHECK(symmetry == "general" || symmetry == "symmetric",
              cat("unsupported symmetry '", symmetry, "'"));
  const bool pattern_only = field == "pattern";
  const bool symmetric = symmetry == "symmetric";

  // Skip comments, read the size line. Dimensions are parsed as 64-bit
  // first so an overflowing header fails with a range message instead of a
  // stream-state mystery (Index is 32-bit).
  constexpr long long kMaxIndex = std::numeric_limits<Index>::max();
  long long rows64 = -1, cols64 = -1, nnz = -1;
  bool have_sizes = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream sizes(line);
    RAPID_CHECK(static_cast<bool>(sizes >> rows64 >> cols64 >> nnz),
                cat("line ", line_no, ": malformed size line '", line,
                    "' (want 'rows cols nnz')"));
    have_sizes = true;
    break;
  }
  RAPID_CHECK(have_sizes,
              cat("truncated stream: no size line in the first ", line_no,
                  " line(s)"));
  RAPID_CHECK(rows64 > 0 && cols64 > 0,
              cat("line ", line_no, ": non-positive dimensions ", rows64,
                  " x ", cols64));
  RAPID_CHECK(rows64 <= kMaxIndex && cols64 <= kMaxIndex,
              cat("line ", line_no, ": dimensions ", rows64, " x ", cols64,
                  " overflow the 32-bit index type (max ", kMaxIndex, ")"));
  RAPID_CHECK(nnz >= 0, cat("line ", line_no, ": negative nnz ", nnz));
  RAPID_CHECK(!symmetric || rows64 == cols64,
              cat("line ", line_no, ": symmetric matrix must be square, got ",
                  rows64, " x ", cols64));
  const auto n_rows = static_cast<Index>(rows64);
  const auto n_cols = static_cast<Index>(cols64);

  CooBuilder coo(n_rows, n_cols);
  long long seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    long long row = 0, col = 0;
    double value = 1.0;
    RAPID_CHECK(static_cast<bool>(entry >> row >> col),
                cat("line ", line_no, ": malformed entry '", line, "'"));
    if (!pattern_only) {
      RAPID_CHECK(static_cast<bool>(entry >> value),
                  cat("line ", line_no, ": missing value in '", line, "'"));
    }
    RAPID_CHECK(row >= 1 && row <= n_rows && col >= 1 && col <= n_cols,
                cat("line ", line_no, ": index (", row, ", ", col,
                    ") out of range for ", n_rows, " x ", n_cols, " in '",
                    line, "'"));
    coo.add(static_cast<Index>(row - 1), static_cast<Index>(col - 1), value);
    if (symmetric && row != col) {
      coo.add(static_cast<Index>(col - 1), static_cast<Index>(row - 1),
              value);
    }
    ++seen;
  }
  RAPID_CHECK(seen == nnz,
              cat("truncated after line ", line_no, ": header promised ", nnz,
                  " entries, stream ended at ", seen));
  return coo.to_csc();
}

CscMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  RAPID_CHECK(in.good(), cat("cannot open '", path, "'"));
  try {
    return read_matrix_market(in);
  } catch (const Error& e) {
    // Re-wrap with the file name so a failure inside a multi-file driver
    // names its input.
    throw Error(cat(path, ": ", e.what()));
  }
}

void write_matrix_market(std::ostream& out, const CscMatrix& matrix) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by rapid97\n";
  out << matrix.n_rows() << " " << matrix.n_cols() << " " << matrix.nnz()
      << "\n";
  out.precision(17);
  for (Index j = 0; j < matrix.n_cols(); ++j) {
    for (Index k = matrix.pattern.col_ptr[j]; k < matrix.pattern.col_ptr[j + 1];
         ++k) {
      out << (matrix.pattern.row_idx[k] + 1) << " " << (j + 1) << " "
          << matrix.values[k] << "\n";
    }
  }
  RAPID_CHECK(out.good(), "write failure");
}

void write_matrix_market_file(const std::string& path,
                              const CscMatrix& matrix) {
  std::ofstream out(path);
  RAPID_CHECK(out.good(), cat("cannot open '", path, "' for writing"));
  write_matrix_market(out, matrix);
}

}  // namespace rapid::sparse
