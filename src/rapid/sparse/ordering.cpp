#include "rapid/sparse/ordering.hpp"

#include <algorithm>
#include <array>
#include <queue>

#include "rapid/support/check.hpp"

namespace rapid::sparse {

namespace {

/// Adjacency of the symmetrized pattern, diagonal removed.
std::vector<std::vector<Index>> symmetric_adjacency(const CscPattern& a) {
  RAPID_CHECK(a.n_rows == a.n_cols, "RCM needs a square pattern");
  const Index n = a.n_cols;
  std::vector<std::vector<Index>> adj(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) {
    for (Index k = a.col_ptr[j]; k < a.col_ptr[j + 1]; ++k) {
      const Index i = a.row_idx[k];
      if (i == j) continue;
      adj[i].push_back(j);
      adj[j].push_back(i);
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

/// BFS from start; returns (last vertex visited, eccentricity, visit count).
struct BfsResult {
  Index last = -1;
  Index depth = 0;
  Index visited = 0;
};

BfsResult bfs(const std::vector<std::vector<Index>>& adj, Index start,
              std::vector<Index>& level) {
  std::fill(level.begin(), level.end(), -1);
  std::queue<Index> queue;
  queue.push(start);
  level[start] = 0;
  BfsResult res;
  res.last = start;
  while (!queue.empty()) {
    const Index u = queue.front();
    queue.pop();
    ++res.visited;
    res.last = u;
    res.depth = level[u];
    for (Index v : adj[u]) {
      if (level[v] == -1) {
        level[v] = level[u] + 1;
        queue.push(v);
      }
    }
  }
  return res;
}

/// George-Liu pseudo-peripheral vertex: repeat BFS from the farthest vertex
/// until the eccentricity stops growing.
Index pseudo_peripheral(const std::vector<std::vector<Index>>& adj,
                        Index start, std::vector<Index>& level) {
  Index current = start;
  BfsResult res = bfs(adj, current, level);
  for (int iter = 0; iter < 8; ++iter) {
    const BfsResult next = bfs(adj, res.last, level);
    if (next.depth <= res.depth) break;
    current = res.last;
    res = next;
  }
  return current;
}

}  // namespace

std::vector<Index> reverse_cuthill_mckee(const CscPattern& a) {
  const Index n = a.n_cols;
  const auto adj = symmetric_adjacency(a);
  std::vector<Index> degree(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    degree[i] = static_cast<Index>(adj[i].size());
  }
  std::vector<Index> level(static_cast<std::size_t>(n), -1);
  std::vector<bool> placed(static_cast<std::size_t>(n), false);
  std::vector<Index> order;
  order.reserve(static_cast<std::size_t>(n));
  for (Index seed = 0; seed < n; ++seed) {
    if (placed[seed]) continue;
    const Index root = pseudo_peripheral(adj, seed, level);
    // Cuthill-McKee BFS from root with neighbors sorted by degree.
    std::queue<Index> queue;
    queue.push(root);
    placed[root] = true;
    while (!queue.empty()) {
      const Index u = queue.front();
      queue.pop();
      order.push_back(u);
      std::vector<Index> next;
      for (Index v : adj[u]) {
        if (!placed[v]) {
          placed[v] = true;
          next.push_back(v);
        }
      }
      std::sort(next.begin(), next.end(), [&](Index x, Index y) {
        if (degree[x] != degree[y]) return degree[x] < degree[y];
        return x < y;
      });
      for (Index v : next) queue.push(v);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<Index> identity_permutation(Index n) {
  std::vector<Index> perm(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) perm[i] = i;
  return perm;
}

std::vector<Index> invert_permutation(const std::vector<Index>& perm) {
  std::vector<Index> inv(perm.size(), -1);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    RAPID_CHECK(perm[i] >= 0 && static_cast<std::size_t>(perm[i]) < perm.size(),
                "invalid permutation entry");
    RAPID_CHECK(inv[perm[i]] == -1, "duplicate permutation entry");
    inv[perm[i]] = static_cast<Index>(i);
  }
  return inv;
}

namespace {

/// Recursive dissection of an axis-aligned box; emits old indices in nested
/// dissection order. `id` maps grid coordinates to old indices.
template <typename IdFn>
void dissect_box(std::array<Index, 3> lo, std::array<Index, 3> hi,
                 Index leaf_size, const IdFn& id, std::vector<Index>& order) {
  const Index dx = hi[0] - lo[0];
  const Index dy = hi[1] - lo[1];
  const Index dz = hi[2] - lo[2];
  const Index cells = dx * dy * dz;
  if (cells <= 0) return;
  const Index longest = std::max({dx, dy, dz});
  if (cells <= leaf_size || longest < 3) {
    for (Index z = lo[2]; z < hi[2]; ++z) {
      for (Index y = lo[1]; y < hi[1]; ++y) {
        for (Index x = lo[0]; x < hi[0]; ++x) {
          order.push_back(id(x, y, z));
        }
      }
    }
    return;
  }
  int axis = 0;
  if (dy == longest) axis = 1;
  if (dz == longest) axis = 2;
  const Index cut = lo[axis] + (hi[axis] - lo[axis]) / 2;
  auto left_hi = hi, right_lo = lo, sep_lo = lo, sep_hi = hi;
  left_hi[axis] = cut;
  right_lo[axis] = cut + 1;
  sep_lo[axis] = cut;
  sep_hi[axis] = cut + 1;
  dissect_box(lo, left_hi, leaf_size, id, order);
  dissect_box(right_lo, hi, leaf_size, id, order);
  dissect_box(sep_lo, sep_hi, leaf_size, id, order);
}

}  // namespace

std::vector<Index> nested_dissection_2d(Index nx, Index ny, Index leaf_size) {
  RAPID_CHECK(nx > 0 && ny > 0, "grid dimensions must be positive");
  std::vector<Index> order;
  order.reserve(static_cast<std::size_t>(nx) * ny);
  dissect_box({0, 0, 0}, {nx, ny, 1}, leaf_size,
              [nx](Index x, Index y, Index) { return y * nx + x; }, order);
  return order;
}

std::vector<Index> nested_dissection_3d(Index nx, Index ny, Index nz,
                                        Index leaf_size) {
  RAPID_CHECK(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
  std::vector<Index> order;
  order.reserve(static_cast<std::size_t>(nx) * ny * nz);
  dissect_box({0, 0, 0}, {nx, ny, nz}, leaf_size,
              [nx, ny](Index x, Index y, Index z) {
                return (z * ny + y) * nx + x;
              },
              order);
  return order;
}

std::vector<Index> minimum_degree(const CscPattern& a) {
  RAPID_CHECK(a.n_rows == a.n_cols, "minimum degree needs a square pattern");
  const Index n = a.n_cols;
  // Elimination-graph adjacency as sorted vectors (diagonal removed).
  std::vector<std::vector<Index>> adj = symmetric_adjacency(a);
  std::vector<bool> eliminated(static_cast<std::size_t>(n), false);
  // Degree buckets for O(1)-ish min extraction; degrees only change for the
  // eliminated vertex's neighborhood each round.
  std::vector<Index> degree(static_cast<std::size_t>(n));
  const Index max_bucket = n;  // degrees are < n
  std::vector<std::vector<Index>> bucket(
      static_cast<std::size_t>(max_bucket) + 1);
  for (Index v = 0; v < n; ++v) {
    degree[v] = static_cast<Index>(adj[v].size());
    bucket[degree[v]].push_back(v);
  }
  std::vector<Index> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<Index> merged;
  Index cursor = 0;
  while (static_cast<Index>(order.size()) < n) {
    // Find the lowest non-empty bucket with a live entry at the stated
    // degree (entries go stale when degrees change; skip those lazily).
    while (cursor <= max_bucket && bucket[cursor].empty()) ++cursor;
    RAPID_CHECK(cursor <= max_bucket, "degree buckets exhausted early");
    const Index v = bucket[cursor].back();
    bucket[cursor].pop_back();
    if (eliminated[v] || degree[v] != cursor) continue;  // stale entry
    eliminated[v] = true;
    order.push_back(v);
    // Clique the live neighborhood of v.
    std::vector<Index> live;
    for (Index u : adj[v]) {
      if (!eliminated[u]) live.push_back(u);
    }
    for (Index u : live) {
      // new adj[u] = (adj[u] \ {v, eliminated}) ∪ (live \ {u}).
      merged.clear();
      merged.reserve(adj[u].size() + live.size());
      for (Index w : adj[u]) {
        if (!eliminated[w]) merged.push_back(w);
      }
      for (Index w : live) {
        if (w != u) merged.push_back(w);
      }
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      adj[u] = merged;
      const Index new_degree = static_cast<Index>(adj[u].size());
      if (new_degree != degree[u]) {
        degree[u] = new_degree;
        bucket[new_degree].push_back(u);
        cursor = std::min(cursor, new_degree);
      }
    }
    adj[v].clear();
    adj[v].shrink_to_fit();
  }
  return order;
}

Index bandwidth(const CscPattern& a) {
  Index bw = 0;
  for (Index j = 0; j < a.n_cols; ++j) {
    for (Index k = a.col_ptr[j]; k < a.col_ptr[j + 1]; ++k) {
      bw = std::max(bw, std::abs(a.row_idx[k] - j));
    }
  }
  return bw;
}

}  // namespace rapid::sparse
