#include "rapid/sparse/etree.hpp"

#include <algorithm>

#include "rapid/support/check.hpp"

namespace rapid::sparse {

std::vector<Index> elimination_tree(const CscPattern& a) {
  RAPID_CHECK(a.n_rows == a.n_cols, "etree needs a square pattern");
  const Index n = a.n_cols;
  std::vector<Index> parent(static_cast<std::size_t>(n), -1);
  std::vector<Index> ancestor(static_cast<std::size_t>(n), -1);
  // Process the union pattern symmetrically: for column j, walk every
  // row index i < j in column j (upper triangle) and also every entry
  // (j, i) with i < j found via the transpose; to avoid materializing the
  // transpose, we pre-union the pattern with its transpose.
  const CscPattern sym = a.union_with(a.transposed());
  for (Index j = 0; j < n; ++j) {
    for (Index k = sym.col_ptr[j]; k < sym.col_ptr[j + 1]; ++k) {
      Index i = sym.row_idx[k];
      if (i >= j) continue;
      // Walk from i up the current forest to the root, compressing.
      while (i != -1 && i < j) {
        const Index next = ancestor[i];
        ancestor[i] = j;
        if (next == -1) {
          parent[i] = j;
          break;
        }
        i = next;
      }
    }
  }
  return parent;
}

std::vector<Index> postorder(const std::vector<Index>& parent) {
  const Index n = static_cast<Index>(parent.size());
  // Build child lists (sorted by construction: children pushed in index
  // order).
  std::vector<Index> head(static_cast<std::size_t>(n), -1);
  std::vector<Index> next(static_cast<std::size_t>(n), -1);
  for (Index v = n - 1; v >= 0; --v) {
    if (parent[v] != -1) {
      RAPID_CHECK(parent[v] >= 0 && parent[v] < n, "bad parent index");
      next[v] = head[parent[v]];
      head[parent[v]] = v;
    }
  }
  std::vector<Index> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<Index> stack;
  for (Index root = 0; root < n; ++root) {
    if (parent[root] != -1) continue;
    // Iterative DFS emitting postorder.
    stack.push_back(root);
    std::vector<Index> emit_stack;
    while (!stack.empty()) {
      const Index v = stack.back();
      stack.pop_back();
      emit_stack.push_back(v);
      for (Index c = head[v]; c != -1; c = next[c]) {
        stack.push_back(c);
      }
    }
    // emit_stack holds a reverse-postorder of the subtree; children were
    // pushed in increasing order so reversing yields children-first with
    // stable child order.
    std::reverse(emit_stack.begin(), emit_stack.end());
    order.insert(order.end(), emit_stack.begin(), emit_stack.end());
  }
  RAPID_CHECK(static_cast<Index>(order.size()) == n,
              "postorder: parent[] contains a cycle");
  return order;
}

std::vector<Index> tree_depths(const std::vector<Index>& parent) {
  const Index n = static_cast<Index>(parent.size());
  std::vector<Index> depth(static_cast<std::size_t>(n), -1);
  for (Index v = 0; v < n; ++v) {
    // Walk up until a known depth or a root, then unwind.
    Index u = v;
    std::vector<Index> path;
    while (u != -1 && depth[u] == -1) {
      path.push_back(u);
      u = parent[u];
    }
    Index base = (u == -1) ? -1 : depth[u];
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      depth[*it] = ++base;
    }
  }
  return depth;
}

}  // namespace rapid::sparse
