// Symbolic factorization: fill patterns computed at the inspector stage,
// exactly as RAPID does before building task graphs.
//
// For Cholesky we compute the pattern of L by column-merge along the
// elimination tree. For LU with partial pivoting we provide the *static*
// symbolic factorization the paper relies on ([6]): a pattern upper bound
// valid for any pivot sequence, so the task dependence structure can be
// fixed before numeric execution. Two bounds are offered:
//  - symmetrized bound: symbolic Cholesky of pattern(A ∪ Aᵀ) — cheap and
//    what our task-graph builders use by default;
//  - George–Ng bound: symbolic Cholesky of pattern(AᵀA) — the provable
//    upper bound for row pivoting, used in validation tests.
#pragma once

#include <vector>

#include "rapid/sparse/csc.hpp"

namespace rapid::sparse {

struct SymbolicFactor {
  /// Pattern of L (lower triangular, full diagonal, sorted columns).
  CscPattern l_pattern;
  /// Elimination tree parents used to compute it.
  std::vector<Index> etree_parent;

  Index fill_nnz() const { return l_pattern.nnz(); }
};

/// Symbolic Cholesky factorization of the symmetrized pattern of A.
/// Requires square A with a structurally nonzero diagonal (added if absent).
SymbolicFactor symbolic_cholesky(const CscPattern& a);

/// Static symbolic LU bound via symmetrization: pattern of L and U = Lᵀ
/// from symbolic Cholesky of pattern(A ∪ Aᵀ).
SymbolicFactor symbolic_lu_static(const CscPattern& a);

/// George–Ng bound: symbolic Cholesky of pattern(AᵀA). Contains the fill of
/// LU with any partial-pivoting row order.
SymbolicFactor symbolic_lu_george_ng(const CscPattern& a);

/// Row-merge static symbolic LU bound (the George–Ng row-merge scheme used
/// by the paper's static symbolic factorization [6]): simulate elimination
/// where, at step k, every row that could still hold a nonzero in column k
/// is a pivot candidate, and all candidates inherit the union of the
/// candidates' patterns. Safe for ANY partial-pivoting sequence by
/// construction, for any A with a structurally nonzero diagonal (added if
/// absent). Returns the full n×n bound on struct(L + U), diagonal included.
CscPattern symbolic_lu_bound_pivoting(const CscPattern& a);

/// Pattern of AᵀA (square, for the George–Ng bound).
CscPattern ata_pattern(const CscPattern& a);

/// nnz(L) per column, from a symbolic factor.
std::vector<Index> column_counts(const SymbolicFactor& f);

}  // namespace rapid::sparse
