// Fill-reducing / bandwidth-reducing orderings. The paper's inputs are
// preordered Harwell-Boeing matrices; we apply reverse Cuthill-McKee to our
// generated grids to get the same banded profile structure the T3D runs saw.
#pragma once

#include <vector>

#include "rapid/sparse/csc.hpp"

namespace rapid::sparse {

/// Reverse Cuthill-McKee ordering of the symmetrized pattern of A.
/// Returns perm with perm[new_index] = old_index. Handles disconnected
/// graphs (each component ordered from a pseudo-peripheral vertex).
std::vector<Index> reverse_cuthill_mckee(const CscPattern& a);

/// Identity permutation of length n.
std::vector<Index> identity_permutation(Index n);

/// Inverse of a permutation (perm[new]=old -> inv[old]=new).
std::vector<Index> invert_permutation(const std::vector<Index>& perm);

/// Structural bandwidth max |i - j| over nonzeros; 0 for diagonal matrices.
Index bandwidth(const CscPattern& a);

/// Geometric nested dissection ordering for an nx × ny grid (the fill-
/// reducing ordering behind the paper's bushy elimination trees): regions
/// are split by one-cell-wide separators, left part numbered first, then
/// right, then the separator. Returns perm with perm[new] = old, old
/// indices in row-major grid order (y * nx + x). Regions with at most
/// `leaf_size` cells are numbered directly.
std::vector<Index> nested_dissection_2d(Index nx, Index ny,
                                        Index leaf_size = 8);

/// 3-D variant on an nx × ny × nz grid (old index = (z*ny + y)*nx + x).
std::vector<Index> nested_dissection_3d(Index nx, Index ny, Index nz,
                                        Index leaf_size = 8);

/// Minimum-degree ordering of the symmetrized pattern of A: repeatedly
/// eliminate a vertex of minimum degree in the (growing) elimination graph,
/// turning its neighborhood into a clique. The classic fill-reducing
/// ordering for matrices without grid geometry; tie-breaking is
/// deterministic. Returns perm with perm[new] = old.
std::vector<Index> minimum_degree(const CscPattern& a);

}  // namespace rapid::sparse
