// Compressed sparse column storage. The whole repo standardizes on CSC
// because both factorization substrates (left/right-looking Cholesky, 1-D
// column-block LU) are column-driven.
#pragma once

#include <cstdint>
#include <vector>

namespace rapid::sparse {

using Index = std::int32_t;

/// Structure-only CSC: column pointers + row indices, rows sorted within
/// each column. Invariants are enforced by validate().
struct CscPattern {
  Index n_rows = 0;
  Index n_cols = 0;
  std::vector<Index> col_ptr;  // size n_cols + 1
  std::vector<Index> row_idx;  // size nnz, sorted per column

  Index nnz() const { return static_cast<Index>(row_idx.size()); }

  /// Throws rapid::Error if any invariant is violated (monotone col_ptr,
  /// sorted unique rows in range).
  void validate() const;

  /// True if (row, col) is present. O(log nnz(col)).
  bool contains(Index row, Index col) const;

  /// Structural transpose.
  CscPattern transposed() const;

  /// Pattern of this ∪ other (same shape required).
  CscPattern union_with(const CscPattern& other) const;

  /// Pattern restricted to the lower triangle (row >= col), diagonal kept.
  CscPattern lower_triangle() const;

  /// Pattern with a full diagonal added.
  CscPattern with_full_diagonal() const;

  bool operator==(const CscPattern& other) const = default;
};

/// Numeric CSC matrix: pattern plus one value per structural nonzero.
struct CscMatrix {
  CscPattern pattern;
  std::vector<double> values;  // size pattern.nnz()

  Index n_rows() const { return pattern.n_rows; }
  Index n_cols() const { return pattern.n_cols; }
  Index nnz() const { return pattern.nnz(); }

  void validate() const;

  /// Value at (row, col), 0.0 if not structurally present.
  double at(Index row, Index col) const;

  /// y = A * x (sizes checked).
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// y = A^T * x.
  std::vector<double> multiply_transpose(const std::vector<double>& x) const;

  /// Dense copy in column-major order, n_rows * n_cols entries.
  std::vector<double> to_dense() const;

  /// Symmetric permutation B = P A P^T where perm[new] = old.
  /// Requires square A.
  CscMatrix permuted_symmetric(const std::vector<Index>& perm) const;

  /// Frobenius norm.
  double frobenius_norm() const;
};

/// An empty pattern of the given shape.
CscPattern make_empty_pattern(Index n_rows, Index n_cols);

}  // namespace rapid::sparse
