#include "rapid/sparse/generators.hpp"

#include <cmath>
#include <cstdlib>

#include "rapid/sparse/coo.hpp"
#include "rapid/support/check.hpp"

namespace rapid::sparse {

namespace {

Index grid_id(Index x, Index y, Index nx) { return y * nx + x; }

}  // namespace

CscMatrix grid_laplacian_2d(Index nx, Index ny, int stencil_points) {
  RAPID_CHECK(nx > 0 && ny > 0, "grid dimensions must be positive");
  RAPID_CHECK(stencil_points == 5 || stencil_points == 9,
              "stencil must be 5 or 9 points");
  const Index n = nx * ny;
  CooBuilder coo(n, n);
  for (Index y = 0; y < ny; ++y) {
    for (Index x = 0; x < nx; ++x) {
      const Index center = grid_id(x, y, nx);
      int degree = 0;
      auto couple = [&](Index ox, Index oy, double w) {
        const Index xx = x + ox;
        const Index yy = y + oy;
        if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) return;
        coo.add(grid_id(xx, yy, nx), center, -w);
        ++degree;
      };
      couple(-1, 0, 1.0);
      couple(1, 0, 1.0);
      couple(0, -1, 1.0);
      couple(0, 1, 1.0);
      if (stencil_points == 9) {
        couple(-1, -1, 0.5);
        couple(1, -1, 0.5);
        couple(-1, 1, 0.5);
        couple(1, 1, 0.5);
      }
      coo.add(center, center, static_cast<double>(degree) + 1.0);
    }
  }
  return coo.to_csc();
}

CscMatrix grid_laplacian_3d(Index nx, Index ny, Index nz) {
  RAPID_CHECK(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
  const Index n = nx * ny * nz;
  CooBuilder coo(n, n);
  auto id = [&](Index x, Index y, Index z) { return (z * ny + y) * nx + x; };
  for (Index z = 0; z < nz; ++z) {
    for (Index y = 0; y < ny; ++y) {
      for (Index x = 0; x < nx; ++x) {
        const Index center = id(x, y, z);
        int degree = 0;
        auto couple = [&](Index ox, Index oy, Index oz) {
          const Index xx = x + ox, yy = y + oy, zz = z + oz;
          if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 || zz >= nz)
            return;
          coo.add(id(xx, yy, zz), center, -1.0);
          ++degree;
        };
        couple(-1, 0, 0);
        couple(1, 0, 0);
        couple(0, -1, 0);
        couple(0, 1, 0);
        couple(0, 0, -1);
        couple(0, 0, 1);
        coo.add(center, center, static_cast<double>(degree) + 1.0);
      }
    }
  }
  return coo.to_csc();
}

CscMatrix convection_diffusion_2d(Index nx, Index ny, double drop_prob,
                                  Rng& rng) {
  RAPID_CHECK(nx > 0 && ny > 0, "grid dimensions must be positive");
  RAPID_CHECK(drop_prob >= 0.0 && drop_prob < 1.0, "drop_prob in [0,1)");
  const Index n = nx * ny;
  CooBuilder coo(n, n);
  for (Index y = 0; y < ny; ++y) {
    for (Index x = 0; x < nx; ++x) {
      const Index center = grid_id(x, y, nx);
      // Per-cell wind: magnitude spans orders of magnitude so that the
      // numerically largest entry in a column is often off-diagonal and
      // partial pivoting genuinely reorders rows.
      const double wind_u = rng.next_double(-1.0, 1.0) *
                            std::pow(10.0, rng.next_double(-1.0, 2.0));
      const double wind_v = rng.next_double(-1.0, 1.0) *
                            std::pow(10.0, rng.next_double(-1.0, 2.0));
      double diag = 4.0;
      auto couple = [&](Index ox, Index oy, double w) {
        const Index xx = x + ox;
        const Index yy = y + oy;
        if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) return;
        if (rng.next_bool(drop_prob)) return;  // structural asymmetry
        coo.add(grid_id(xx, yy, nx), center, w);
        diag += std::abs(w) * 0.25;
      };
      // Upwind discretization: convection adds to one side only.
      couple(-1, 0, -1.0 - (wind_u > 0 ? wind_u : 0.0));
      couple(1, 0, -1.0 - (wind_u < 0 ? -wind_u : 0.0));
      couple(0, -1, -1.0 - (wind_v > 0 ? wind_v : 0.0));
      couple(0, 1, -1.0 - (wind_v < 0 ? -wind_v : 0.0));
      coo.add(center, center, diag);
    }
  }
  return coo.to_csc();
}

CscMatrix random_banded(Index n, Index bandwidth, double density, Rng& rng) {
  RAPID_CHECK(n > 0, "n must be positive");
  RAPID_CHECK(bandwidth >= 0 && bandwidth < n, "bandwidth out of range");
  RAPID_CHECK(density > 0.0 && density <= 1.0, "density in (0,1]");
  CooBuilder coo(n, n);
  for (Index j = 0; j < n; ++j) {
    double col_sum = 0.0;
    const Index lo = std::max<Index>(0, j - bandwidth);
    const Index hi = std::min<Index>(n - 1, j + bandwidth);
    for (Index i = lo; i <= hi; ++i) {
      if (i == j) continue;
      if (!rng.next_bool(density)) continue;
      const double v = rng.next_double(-1.0, 1.0);
      coo.add(i, j, v);
      col_sum += std::abs(v);
    }
    coo.add(j, j, col_sum + 1.0 + rng.next_double());
  }
  return coo.to_csc();
}

CscMatrix make_diagonally_dominant(const CscMatrix& a) {
  RAPID_CHECK(a.n_rows() == a.n_cols(), "needs a square matrix");
  const Index n = a.n_cols();
  std::vector<double> offdiag_sum(static_cast<std::size_t>(n), 0.0);
  for (Index j = 0; j < n; ++j) {
    for (Index k = a.pattern.col_ptr[j]; k < a.pattern.col_ptr[j + 1]; ++k) {
      if (a.pattern.row_idx[k] != j) {
        offdiag_sum[a.pattern.row_idx[k]] += std::abs(a.values[k]);
      }
    }
  }
  double shift = 0.0;
  for (double s : offdiag_sum) shift = std::max(shift, s);
  shift += 1.0;
  CooBuilder coo(n, n);
  for (Index j = 0; j < n; ++j) {
    for (Index k = a.pattern.col_ptr[j]; k < a.pattern.col_ptr[j + 1]; ++k) {
      coo.add(a.pattern.row_idx[k], j, a.values[k]);
    }
    coo.add(j, j, shift);
  }
  return coo.to_csc();
}

std::vector<double> rhs_for_unit_solution(const CscMatrix& a) {
  std::vector<double> ones(static_cast<std::size_t>(a.n_cols()), 1.0);
  return a.multiply(ones);
}

}  // namespace rapid::sparse
