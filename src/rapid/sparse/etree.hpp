// Elimination tree of a symmetric (or symmetrized) sparse pattern, plus the
// postordering used to derive supernode/slice structure. Liu's algorithm
// with path compression, O(nnz · α(n)).
#pragma once

#include <vector>

#include "rapid/sparse/csc.hpp"

namespace rapid::sparse {

/// parent[j] = etree parent of column j, or -1 for roots. The input is
/// interpreted symmetrically (only entries with row < col are consulted in
/// the upper triangle of A ∪ Aᵀ).
std::vector<Index> elimination_tree(const CscPattern& a);

/// Postorder of a forest given parent[] (children visited before parents,
/// ties by child index). Returns order with order[k] = vertex at position k.
std::vector<Index> postorder(const std::vector<Index>& parent);

/// depth[j] = distance from j to its root (roots have depth 0).
std::vector<Index> tree_depths(const std::vector<Index>& parent);

}  // namespace rapid::sparse
