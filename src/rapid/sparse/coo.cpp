#include "rapid/sparse/coo.hpp"

#include <algorithm>
#include <numeric>

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::sparse {

CooBuilder::CooBuilder(Index n_rows, Index n_cols)
    : n_rows_(n_rows), n_cols_(n_cols) {
  RAPID_CHECK(n_rows >= 0 && n_cols >= 0, "negative dimensions");
}

void CooBuilder::add(Index row, Index col, double value) {
  RAPID_CHECK(row >= 0 && row < n_rows_ && col >= 0 && col < n_cols_,
              cat("triplet (", row, ",", col, ") out of range"));
  rows_.push_back(row);
  cols_.push_back(col);
  vals_.push_back(value);
}

CscMatrix CooBuilder::to_csc() const {
  std::vector<std::size_t> order(rows_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (cols_[a] != cols_[b]) return cols_[a] < cols_[b];
    return rows_[a] < rows_[b];
  });
  CscMatrix out;
  out.pattern.n_rows = n_rows_;
  out.pattern.n_cols = n_cols_;
  out.pattern.col_ptr.assign(static_cast<std::size_t>(n_cols_) + 1, 0);
  Index cur_col = -1;
  Index cur_row = -1;
  for (std::size_t k : order) {
    if (cols_[k] == cur_col && rows_[k] == cur_row) {
      out.values.back() += vals_[k];  // duplicate: accumulate
      continue;
    }
    cur_col = cols_[k];
    cur_row = rows_[k];
    out.pattern.row_idx.push_back(cur_row);
    out.values.push_back(vals_[k]);
    ++out.pattern.col_ptr[static_cast<std::size_t>(cur_col) + 1];
  }
  for (Index j = 0; j < n_cols_; ++j) {
    out.pattern.col_ptr[j + 1] += out.pattern.col_ptr[j];
  }
  return out;
}

}  // namespace rapid::sparse
