// Coordinate-format builder: the generators accumulate triplets here and
// compress once. Duplicate entries are summed (finite-element style).
#pragma once

#include <vector>

#include "rapid/sparse/csc.hpp"

namespace rapid::sparse {

class CooBuilder {
 public:
  CooBuilder(Index n_rows, Index n_cols);

  /// Accumulates value at (row, col); duplicates sum at compression time.
  void add(Index row, Index col, double value);

  Index n_rows() const { return n_rows_; }
  Index n_cols() const { return n_cols_; }
  std::size_t num_triplets() const { return rows_.size(); }

  /// Compresses to CSC, summing duplicates. The builder stays usable.
  CscMatrix to_csc() const;

 private:
  Index n_rows_;
  Index n_cols_;
  std::vector<Index> rows_;
  std::vector<Index> cols_;
  std::vector<double> vals_;
};

}  // namespace rapid::sparse
