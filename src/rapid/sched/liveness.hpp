// Liveness ("dead point") analysis of a schedule (paper Def. 4-6): for each
// processor, the first/last positions at which each volatile object is
// accessed. MAPs free an object once execution passes its last access; the
// same table yields MEM_REQ / MIN_MEM and the no-recycling footprint TOT.
#pragma once

#include <cstdint>
#include <vector>

#include "rapid/sched/schedule.hpp"

namespace rapid::sched {

struct VolatileLifetime {
  DataId object = graph::kInvalidData;
  std::int32_t first_pos = 0;  // first accessing position on this processor
  std::int32_t last_pos = 0;   // last accessing position (inclusive)
  std::int64_t size_bytes = 0;
};

struct ProcLiveness {
  /// Volatile objects of this processor (paper Def. 3), sorted by first_pos.
  std::vector<VolatileLifetime> volatiles;
  /// Total size of this processor's permanent objects. Matches Def. 5:
  /// permanent space counts for the whole run.
  std::int64_t permanent_bytes = 0;
  /// Max over schedule positions of permanent + alive volatile bytes
  /// (= max_w MEM_REQ(T_w, P_x)).
  std::int64_t peak_bytes = 0;
  /// permanent + sum of all volatile sizes (no recycling).
  std::int64_t total_bytes = 0;
};

struct LivenessTable {
  std::vector<ProcLiveness> procs;

  /// MIN_MEM of the schedule (paper Def. 5).
  std::int64_t min_mem() const;
  /// TOT: the no-recycling footprint used as the 100% reference in the
  /// paper's experiments (max over processors of permanent + volatile).
  std::int64_t tot_mem() const;
};

/// Requires schedule.validate(graph)-clean input. Permanent objects are
/// those owned by the processor; every other accessed object is volatile
/// there (Def. 3).
LivenessTable analyze_liveness(const graph::TaskGraph& graph,
                               const Schedule& schedule);

/// Memory scalability ratio S1 / S_p of a schedule (Figure 7's metric),
/// where S_p = MIN_MEM.
double memory_scalability(const graph::TaskGraph& graph,
                          const Schedule& schedule);

}  // namespace rapid::sched
