// Dominant Sequence Clustering (Yang & Gerasoulis [21]), the paper's other
// stage-one option ("tasks are clustered to exploit data locality using DSC
// or the owner-compute rule"). This is the standard simplified DSC: free
// tasks are examined in dominant-sequence order (tlevel + blevel); each is
// appended to the predecessor cluster that minimizes its start time (zeroing
// that incoming edge) or opens a new cluster if no merge helps.
//
// The runtime requires every writer of an object to live on one processor
// (owner-compute), so the raw DSC clusters are closed under "shares a
// written object" before they are returned — DSC chooses locality, the
// closure keeps the execution model sound.
#pragma once

#include "rapid/machine/params.hpp"
#include "rapid/sched/mapping.hpp"

namespace rapid::sched {

/// DSC clustering with owner-closure. The result plugs into
/// map_clusters_lpt() exactly like owner_compute_clusters().
Clustering dsc_clusters(const graph::TaskGraph& graph,
                        const machine::MachineParams& params);

/// Raw cluster count before the owner-closure merge (exposed for tests and
/// diagnostics: closure can only reduce the count).
struct DscStats {
  std::int32_t raw_clusters = 0;
  std::int32_t closed_clusters = 0;
  double estimated_makespan = 0.0;  // unbounded-processor schedule length
};

Clustering dsc_clusters(const graph::TaskGraph& graph,
                        const machine::MachineParams& params,
                        DscStats* stats);

}  // namespace rapid::sched
