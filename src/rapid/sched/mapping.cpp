#include "rapid/sched/mapping.hpp"

#include <algorithm>
#include <numeric>

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::sched {

void assign_owners_cyclic(graph::TaskGraph& graph, int num_procs) {
  RAPID_CHECK(num_procs > 0, "num_procs must be positive");
  for (DataId d = 0; d < graph.num_data(); ++d) {
    graph.set_owner(d, static_cast<ProcId>(d % num_procs));
  }
}

namespace {

/// Union-find over data objects.
struct UnionFind {
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::int32_t find(std::int32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::int32_t a, std::int32_t b) { parent[find(a)] = find(b); }
  std::vector<std::int32_t> parent;
};

}  // namespace

Clustering owner_compute_clusters(const graph::TaskGraph& graph) {
  UnionFind uf(static_cast<std::size_t>(graph.num_data()));
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    const auto& writes = graph.task(t).writes;
    for (std::size_t i = 1; i < writes.size(); ++i) {
      uf.unite(writes[0], writes[i]);
    }
  }
  Clustering out;
  out.cluster_of_task.assign(static_cast<std::size_t>(graph.num_tasks()), -1);
  out.cluster_of_data.assign(static_cast<std::size_t>(graph.num_data()), -1);
  // Number clusters densely over written-object roots.
  for (DataId d = 0; d < graph.num_data(); ++d) {
    if (graph.writers(d).empty() && graph.readers(d).empty()) continue;
    const std::int32_t root = uf.find(d);
    if (out.cluster_of_data[root] == -1) {
      out.cluster_of_data[root] = out.num_clusters++;
    }
    out.cluster_of_data[d] = out.cluster_of_data[root];
  }
  out.cluster_flops.assign(static_cast<std::size_t>(out.num_clusters), 0.0);
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    const graph::Task& task = graph.task(t);
    const DataId anchor =
        !task.writes.empty() ? task.writes.front() : task.reads.front();
    out.cluster_of_task[t] = out.cluster_of_data[anchor];
    RAPID_CHECK(out.cluster_of_task[t] >= 0, "task in no cluster");
    out.cluster_flops[out.cluster_of_task[t]] += task.flops;
  }
  return out;
}

std::vector<ProcId> map_clusters_lpt(graph::TaskGraph& graph,
                                     const Clustering& clustering,
                                     int num_procs) {
  RAPID_CHECK(num_procs > 0, "num_procs must be positive");
  std::vector<std::int32_t> by_weight(
      static_cast<std::size_t>(clustering.num_clusters));
  std::iota(by_weight.begin(), by_weight.end(), 0);
  std::sort(by_weight.begin(), by_weight.end(),
            [&](std::int32_t a, std::int32_t b) {
              if (clustering.cluster_flops[a] != clustering.cluster_flops[b])
                return clustering.cluster_flops[a] >
                       clustering.cluster_flops[b];
              return a < b;
            });
  std::vector<double> load(static_cast<std::size_t>(num_procs), 0.0);
  std::vector<ProcId> proc_of_cluster(
      static_cast<std::size_t>(clustering.num_clusters), 0);
  for (std::int32_t c : by_weight) {
    const auto lightest = static_cast<ProcId>(
        std::min_element(load.begin(), load.end()) - load.begin());
    proc_of_cluster[c] = lightest;
    load[lightest] += clustering.cluster_flops[c];
  }
  // Stamp owners: every touched object follows its cluster.
  for (DataId d = 0; d < graph.num_data(); ++d) {
    if (clustering.cluster_of_data[d] >= 0) {
      graph.set_owner(d, proc_of_cluster[clustering.cluster_of_data[d]]);
    } else {
      graph.set_owner(d, static_cast<ProcId>(d % num_procs));
    }
  }
  std::vector<ProcId> proc_of_task(
      static_cast<std::size_t>(graph.num_tasks()));
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    proc_of_task[t] = proc_of_cluster[clustering.cluster_of_task[t]];
  }
  return proc_of_task;
}

std::vector<ProcId> owner_compute_tasks(const graph::TaskGraph& graph,
                                        int num_procs) {
  RAPID_CHECK(num_procs > 0, "num_procs must be positive");
  std::vector<ProcId> proc_of_task(static_cast<std::size_t>(graph.num_tasks()),
                                   graph::kInvalidProc);
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    const graph::Task& task = graph.task(t);
    ProcId proc = graph::kInvalidProc;
    for (DataId d : task.writes) {
      const ProcId owner = graph.data(d).owner;
      RAPID_CHECK(owner >= 0 && owner < num_procs,
                  cat("object ", graph.data(d).name, " has no valid owner"));
      RAPID_CHECK(proc == graph::kInvalidProc || proc == owner,
                  cat("task ", task.name,
                      " writes objects with different owners; owner-compute "
                      "mapping is ambiguous"));
      proc = owner;
    }
    if (proc == graph::kInvalidProc) {
      const ProcId owner = graph.data(task.reads.front()).owner;
      RAPID_CHECK(owner >= 0 && owner < num_procs, "unowned read object");
      proc = owner;
    }
    proc_of_task[t] = proc;
  }
  return proc_of_task;
}

}  // namespace rapid::sched
