#include "rapid/sched/ordering.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::sched {

using graph::Edge;
using graph::TaskGraph;

double arrival_delay_us(const machine::MachineParams& params,
                        std::int64_t bytes) {
  return params.rma_overhead_us + params.rma_latency_us +
         static_cast<double>(bytes) / params.bytes_per_us;
}

std::int64_t edge_bytes(const TaskGraph& graph, const Edge& e) {
  if (e.kind == graph::DepKind::kTrue) {
    return graph.data(e.object).size_bytes;
  }
  return 8;  // synchronization flag
}

std::vector<double> bottom_levels(const TaskGraph& graph,
                                  const std::vector<ProcId>& proc_of_task,
                                  const machine::MachineParams& params) {
  const auto order = graph.topological_order();
  std::vector<double> bl(static_cast<std::size_t>(graph.num_tasks()), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double best = 0.0;
    for (std::int32_t ei : graph.out_edges(t)) {
      const Edge& e = graph.edges()[ei];
      const double comm = proc_of_task[e.src] == proc_of_task[e.dst]
                              ? 0.0
                              : arrival_delay_us(params, edge_bytes(graph, e));
      best = std::max(best, comm + bl[e.dst]);
    }
    bl[t] = params.task_time_us(graph.task(t).flops) + best;
  }
  return bl;
}

namespace {

enum class Policy { kRcp, kMpo, kDts };

/// Deterministic list-scheduling simulation shared by the three orderings.
/// At every step the processor that can start a task earliest acts first
/// (ties by processor id); it runs its highest-priority eligible ready task.
class OrderingEngine {
 public:
  OrderingEngine(const TaskGraph& graph,
                 const std::vector<ProcId>& proc_of_task, int num_procs,
                 const machine::MachineParams& params, Policy policy,
                 std::vector<std::int32_t> slice_of_task)
      : graph_(graph),
        proc_of_task_(proc_of_task),
        num_procs_(num_procs),
        params_(params),
        policy_(policy),
        slice_of_task_(std::move(slice_of_task)),
        bl_(bottom_levels(graph, proc_of_task, params)) {
    RAPID_CHECK(static_cast<TaskId>(proc_of_task.size()) == graph.num_tasks(),
                "proc_of_task size mismatch");
    const auto n = static_cast<std::size_t>(graph.num_tasks());
    pending_.assign(n, 0);
    ready_time_.assign(n, 0.0);
    for (TaskId t = 0; t < graph.num_tasks(); ++t) {
      pending_[t] = static_cast<std::int32_t>(graph.in_edges(t).size());
      RAPID_CHECK(proc_of_task[t] >= 0 && proc_of_task[t] < num_procs,
                  "task assigned to invalid processor");
    }
    ready_.resize(static_cast<std::size_t>(num_procs));
    idle_.assign(static_cast<std::size_t>(num_procs), 0.0);
    if (policy_ == Policy::kMpo) {
      allocated_.assign(static_cast<std::size_t>(num_procs),
                        std::vector<bool>(
                            static_cast<std::size_t>(graph.num_data()), false));
    }
    if (policy_ == Policy::kDts) {
      RAPID_CHECK(slice_of_task_.size() == n, "missing slice assignment");
      slice_remaining_.resize(static_cast<std::size_t>(num_procs));
      for (TaskId t = 0; t < graph.num_tasks(); ++t) {
        ++slice_remaining_[proc_of_task[t]][slice_of_task_[t]];
      }
    }
    for (TaskId t = 0; t < graph.num_tasks(); ++t) {
      if (pending_[t] == 0) ready_[proc_of_task[t]].push_back(t);
    }
  }

  Schedule run() {
    Schedule out;
    out.num_procs = num_procs_;
    out.order.resize(static_cast<std::size_t>(num_procs_));
    const auto n = static_cast<std::size_t>(graph_.num_tasks());
    out.predicted_start.assign(n, 0.0);
    out.predicted_finish.assign(n, 0.0);

    for (std::size_t scheduled = 0; scheduled < n; ++scheduled) {
      // Processor with the earliest possible start among eligible tasks.
      ProcId best_proc = graph::kInvalidProc;
      double best_est = std::numeric_limits<double>::infinity();
      for (ProcId p = 0; p < num_procs_; ++p) {
        double earliest = std::numeric_limits<double>::infinity();
        for (TaskId t : ready_[p]) {
          if (!eligible(p, t)) continue;
          earliest = std::min(earliest, std::max(idle_[p], ready_time_[t]));
        }
        if (earliest < best_est) {
          best_est = earliest;
          best_proc = p;
        }
      }
      RAPID_CHECK(best_proc != graph::kInvalidProc,
                  "ordering deadlock: no eligible ready task anywhere");

      // Highest-priority eligible task on that processor that can start at
      // best_est.
      auto& ready = ready_[best_proc];
      std::size_t best_idx = ready.size();
      for (std::size_t i = 0; i < ready.size(); ++i) {
        const TaskId t = ready[i];
        if (!eligible(best_proc, t)) continue;
        if (std::max(idle_[best_proc], ready_time_[t]) > best_est) continue;
        if (best_idx == ready.size() ||
            higher_priority(best_proc, t, ready[best_idx])) {
          best_idx = i;
        }
      }
      RAPID_ASSERT(best_idx < ready.size());
      const TaskId chosen = ready[best_idx];
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best_idx));

      const double start = best_est;
      const double finish =
          start + params_.task_time_us(graph_.task(chosen).flops);
      out.order[best_proc].push_back(chosen);
      out.predicted_start[chosen] = start;
      out.predicted_finish[chosen] = finish;
      out.predicted_makespan = std::max(out.predicted_makespan, finish);
      idle_[best_proc] = finish;
      on_scheduled(best_proc, chosen);

      for (std::int32_t ei : graph_.out_edges(chosen)) {
        const Edge& e = graph_.edges()[ei];
        const double comm =
            proc_of_task_[e.src] == proc_of_task_[e.dst]
                ? 0.0
                : arrival_delay_us(params_, edge_bytes(graph_, e));
        ready_time_[e.dst] = std::max(ready_time_[e.dst], finish + comm);
        if (--pending_[e.dst] == 0) {
          ready_[proc_of_task_[e.dst]].push_back(e.dst);
        }
      }
    }
    out.rebuild_index(graph_.num_tasks());
    return out;
  }

 private:
  bool eligible(ProcId p, TaskId t) const {
    if (policy_ != Policy::kDts) return true;
    const auto& remaining = slice_remaining_[p];
    RAPID_ASSERT(!remaining.empty());
    return slice_of_task_[t] == remaining.begin()->first;
  }

  /// True if a beats b on processor p.
  bool higher_priority(ProcId p, TaskId a, TaskId b) const {
    if (policy_ == Policy::kMpo) {
      const double ma = memory_priority(p, a);
      const double mb = memory_priority(p, b);
      if (ma != mb) return ma > mb;
    }
    if (policy_ == Policy::kDts && slice_of_task_[a] != slice_of_task_[b]) {
      return slice_of_task_[a] < slice_of_task_[b];
    }
    if (bl_[a] != bl_[b]) return bl_[a] > bl_[b];
    return a < b;
  }

  double memory_priority(ProcId p, TaskId t) const {
    const auto accesses = graph_.task(t).accesses();
    RAPID_ASSERT(!accesses.empty());
    int resident = 0;
    for (graph::DataId d : accesses) {
      if (graph_.data(d).owner == p || allocated_[p][d]) ++resident;
    }
    return static_cast<double>(resident) /
           static_cast<double>(accesses.size());
  }

  void on_scheduled(ProcId p, TaskId t) {
    if (policy_ == Policy::kMpo) {
      for (graph::DataId d : graph_.task(t).accesses()) {
        if (graph_.data(d).owner != p) allocated_[p][d] = true;
      }
    }
    if (policy_ == Policy::kDts) {
      auto& remaining = slice_remaining_[p];
      auto it = remaining.find(slice_of_task_[t]);
      RAPID_ASSERT(it != remaining.end());
      if (--it->second == 0) remaining.erase(it);
    }
  }

  const TaskGraph& graph_;
  const std::vector<ProcId>& proc_of_task_;
  const int num_procs_;
  const machine::MachineParams& params_;
  const Policy policy_;
  std::vector<std::int32_t> slice_of_task_;
  std::vector<double> bl_;

  std::vector<std::int32_t> pending_;
  std::vector<double> ready_time_;
  std::vector<std::vector<TaskId>> ready_;
  std::vector<double> idle_;
  std::vector<std::vector<bool>> allocated_;  // MPO
  std::vector<std::map<std::int32_t, std::int32_t>> slice_remaining_;  // DTS
};

}  // namespace

Schedule schedule_rcp(const TaskGraph& graph,
                      const std::vector<ProcId>& proc_of_task, int num_procs,
                      const machine::MachineParams& params) {
  return OrderingEngine(graph, proc_of_task, num_procs, params, Policy::kRcp,
                        {})
      .run();
}

Schedule schedule_mpo(const TaskGraph& graph,
                      const std::vector<ProcId>& proc_of_task, int num_procs,
                      const machine::MachineParams& params) {
  return OrderingEngine(graph, proc_of_task, num_procs, params, Policy::kMpo,
                        {})
      .run();
}

Schedule schedule_dts(const TaskGraph& graph,
                      const std::vector<ProcId>& proc_of_task, int num_procs,
                      const machine::MachineParams& params,
                      std::optional<std::int64_t> volatile_budget) {
  const graph::SliceDecomposition slices = graph::compute_slices(graph);
  std::vector<std::int32_t> slice_of_task = slices.slice_of_task;
  if (volatile_budget.has_value()) {
    slice_of_task = merge_slices(graph, slices, proc_of_task, num_procs,
                                 *volatile_budget);
  }
  return OrderingEngine(graph, proc_of_task, num_procs, params, Policy::kDts,
                        std::move(slice_of_task))
      .run();
}

std::vector<std::int64_t> slice_volatile_demand(
    const TaskGraph& graph, const graph::SliceDecomposition& slices,
    const std::vector<ProcId>& proc_of_task, int num_procs) {
  std::vector<std::int64_t> demand(slices.num_slices(), 0);
  for (std::size_t s = 0; s < slices.num_slices(); ++s) {
    std::vector<std::int64_t> bytes(static_cast<std::size_t>(num_procs), 0);
    std::map<std::pair<ProcId, graph::DataId>, bool> seen;
    for (TaskId t : slices.slices[s].tasks) {
      const ProcId p = proc_of_task[t];
      for (graph::DataId d : graph.task(t).accesses()) {
        if (graph.data(d).owner == p) continue;
        if (seen.emplace(std::make_pair(p, d), true).second) {
          bytes[p] += graph.data(d).size_bytes;
        }
      }
    }
    demand[s] = *std::max_element(bytes.begin(), bytes.end());
  }
  return demand;
}

std::vector<std::int32_t> merge_slices(
    const TaskGraph& graph, const graph::SliceDecomposition& slices,
    const std::vector<ProcId>& proc_of_task, int num_procs,
    std::int64_t volatile_budget, std::int32_t* merged_count) {
  RAPID_CHECK(volatile_budget >= 0, "negative volatile budget");
  const std::vector<std::int64_t> demand =
      slice_volatile_demand(graph, slices, proc_of_task, num_procs);
  std::vector<std::int32_t> merged_of_slice(slices.num_slices(), 0);
  std::int32_t current = 0;
  std::int64_t space_req = slices.num_slices() > 0 ? demand[0] : 0;
  for (std::size_t i = 1; i < slices.num_slices(); ++i) {
    if (space_req + demand[i] <= volatile_budget) {
      space_req += demand[i];  // merge L_i into the current merged slice
    } else {
      ++current;
      space_req = demand[i];
    }
    merged_of_slice[i] = current;
  }
  if (merged_count != nullptr) *merged_count = current + 1;
  std::vector<std::int32_t> out(
      static_cast<std::size_t>(graph.num_tasks()));
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    out[t] = merged_of_slice[slices.slice_of_task[t]];
  }
  return out;
}

}  // namespace rapid::sched
