#include "rapid/sched/dsc.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <set>

#include "rapid/sched/ordering.hpp"
#include "rapid/support/check.hpp"

namespace rapid::sched {

namespace {

/// Union-find for the owner-closure pass.
struct UnionFind {
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::int32_t find(std::int32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::int32_t a, std::int32_t b) { parent[find(a)] = find(b); }
  std::vector<std::int32_t> parent;
};

}  // namespace

Clustering dsc_clusters(const graph::TaskGraph& graph,
                        const machine::MachineParams& params) {
  return dsc_clusters(graph, params, nullptr);
}

Clustering dsc_clusters(const graph::TaskGraph& graph,
                        const machine::MachineParams& params,
                        DscStats* stats) {
  const auto n = static_cast<std::size_t>(graph.num_tasks());
  // blevel with a uniform (processor-agnostic) communication estimate: at
  // clustering time placement is unknown, so every edge is priced as remote.
  std::vector<double> blevel(n, 0.0);
  {
    const auto order = graph.topological_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const graph::TaskId t = *it;
      double best = 0.0;
      for (std::int32_t ei : graph.out_edges(t)) {
        const graph::Edge& e = graph.edges()[ei];
        best = std::max(
            best, arrival_delay_us(params, edge_bytes(graph, e)) +
                      blevel[e.dst]);
      }
      blevel[t] = params.task_time_us(graph.task(t).flops) + best;
    }
  }

  std::vector<std::int32_t> cluster_of_task(n, -1);
  std::vector<double> finish(n, 0.0);
  std::vector<double> cluster_ready;  // finish time of each cluster's tail

  // Free list ordered by dominant-sequence priority (tlevel + blevel ~ here
  // approximated by blevel at release + realized pred finishes).
  std::vector<std::int32_t> pending(n, 0);
  struct Entry {
    double priority;
    graph::TaskId task;
    bool operator<(const Entry& other) const {
      if (priority != other.priority) return priority < other.priority;
      return task > other.task;
    }
  };
  std::priority_queue<Entry> free_tasks;
  std::vector<double> release_tlevel(n, 0.0);
  for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
    pending[t] = static_cast<std::int32_t>(graph.in_edges(t).size());
    if (pending[t] == 0) free_tasks.push(Entry{blevel[t], t});
  }

  double makespan = 0.0;
  std::size_t scheduled = 0;
  while (!free_tasks.empty()) {
    const graph::TaskId t = free_tasks.top().task;
    free_tasks.pop();
    ++scheduled;
    // Candidate placements: a new cluster, or appended to a predecessor's
    // cluster (which zeroes that predecessor's edge).
    double best_start = 0.0;
    std::int32_t best_cluster = -1;  // -1 = new cluster
    {
      // New-cluster start: all incoming edges remote.
      for (std::int32_t ei : graph.in_edges(t)) {
        const graph::Edge& e = graph.edges()[ei];
        best_start = std::max(
            best_start, finish[e.src] + arrival_delay_us(
                                            params, edge_bytes(graph, e)));
      }
    }
    std::set<std::int32_t> tried;
    for (std::int32_t ei : graph.in_edges(t)) {
      const std::int32_t c = cluster_of_task[graph.edges()[ei].src];
      if (!tried.insert(c).second) continue;
      // Start when appended to cluster c: after the cluster's tail, with
      // same-cluster edges zeroed.
      double start = cluster_ready[c];
      for (std::int32_t ej : graph.in_edges(t)) {
        const graph::Edge& e = graph.edges()[ej];
        const double comm =
            cluster_of_task[e.src] == c
                ? 0.0
                : arrival_delay_us(params, edge_bytes(graph, e));
        start = std::max(start, finish[e.src] + comm);
      }
      if (start < best_start) {
        best_start = start;
        best_cluster = c;
      }
    }
    if (best_cluster == -1) {
      best_cluster = static_cast<std::int32_t>(cluster_ready.size());
      cluster_ready.push_back(0.0);
    }
    cluster_of_task[t] = best_cluster;
    finish[t] = best_start + params.task_time_us(graph.task(t).flops);
    cluster_ready[best_cluster] = finish[t];
    makespan = std::max(makespan, finish[t]);
    for (std::int32_t ei : graph.out_edges(t)) {
      const graph::TaskId v = graph.edges()[ei].dst;
      release_tlevel[v] = std::max(release_tlevel[v], finish[t]);
      if (--pending[v] == 0) {
        free_tasks.push(Entry{release_tlevel[v] + blevel[v], v});
      }
    }
  }
  RAPID_CHECK(scheduled == n, "DSC left tasks unscheduled (cycle?)");
  const auto raw_clusters = static_cast<std::int32_t>(cluster_ready.size());

  // Owner-closure: writers of one object must share a cluster.
  UnionFind uf(cluster_ready.size());
  for (graph::DataId d = 0; d < graph.num_data(); ++d) {
    const auto writers = graph.writers(d);
    for (std::size_t i = 1; i < writers.size(); ++i) {
      uf.unite(cluster_of_task[writers[0]], cluster_of_task[writers[i]]);
    }
  }
  // Also tasks writing several objects already share a cluster by
  // construction (single task), but their objects' other writers may not —
  // the union above covers it transitively.

  Clustering out;
  out.cluster_of_task.assign(n, -1);
  out.cluster_of_data.assign(static_cast<std::size_t>(graph.num_data()), -1);
  std::vector<std::int32_t> renumber(cluster_ready.size(), -1);
  for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
    const std::int32_t root = uf.find(cluster_of_task[t]);
    if (renumber[root] == -1) renumber[root] = out.num_clusters++;
    out.cluster_of_task[t] = renumber[root];
  }
  out.cluster_flops.assign(static_cast<std::size_t>(out.num_clusters), 0.0);
  for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
    out.cluster_flops[out.cluster_of_task[t]] += graph.task(t).flops;
  }
  for (graph::DataId d = 0; d < graph.num_data(); ++d) {
    const auto writers = graph.writers(d);
    if (!writers.empty()) {
      out.cluster_of_data[d] = out.cluster_of_task[writers.front()];
    } else if (!graph.readers(d).empty()) {
      out.cluster_of_data[d] = out.cluster_of_task[graph.readers(d).front()];
    }
  }
  if (stats != nullptr) {
    stats->raw_clusters = raw_clusters;
    stats->closed_clusters = out.num_clusters;
    stats->estimated_makespan = makespan;
  }
  return out;
}

}  // namespace rapid::sched
