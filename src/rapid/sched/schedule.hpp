// Static schedules (paper Def. 1): an execution order of tasks on each
// processor, plus a unique owner processor per data object (stored on the
// TaskGraph's DataObjects). Predicted times come from the list-scheduling
// simulation that produced the order; the run-time numbers come from the
// executors in rapid::rt.
#pragma once

#include <string>
#include <vector>

#include "rapid/graph/task_graph.hpp"

namespace rapid::sched {

using graph::DataId;
using graph::ProcId;
using graph::TaskId;

struct Schedule {
  int num_procs = 0;
  /// order[p] = tasks of processor p in execution order.
  std::vector<std::vector<TaskId>> order;
  /// Derived indexes (rebuild_index()).
  std::vector<ProcId> proc_of_task;
  std::vector<std::int32_t> pos_of_task;

  /// Predicted by the ordering simulation (microseconds).
  std::vector<double> predicted_start;
  std::vector<double> predicted_finish;
  double predicted_makespan = 0.0;

  /// Fills proc_of_task / pos_of_task from order; checks every task appears
  /// exactly once.
  void rebuild_index(TaskId num_tasks);

  /// Verifies the schedule against the graph: every task placed, every
  /// same-processor dependence edge goes forward in the order, and every
  /// writer of an object sits on the object's owner (owner-compute).
  /// Throws rapid::Error with a diagnostic on violation.
  void validate(const graph::TaskGraph& graph) const;

  /// ASCII Gantt chart of predicted times (for debugging / examples).
  std::string gantt(const graph::TaskGraph& graph, int width = 78) const;
};

}  // namespace rapid::sched
