#include "rapid/sched/liveness.hpp"

#include <algorithm>
#include <map>

#include "rapid/support/check.hpp"

namespace rapid::sched {

std::int64_t LivenessTable::min_mem() const {
  std::int64_t worst = 0;
  for (const ProcLiveness& p : procs) worst = std::max(worst, p.peak_bytes);
  return worst;
}

std::int64_t LivenessTable::tot_mem() const {
  std::int64_t worst = 0;
  for (const ProcLiveness& p : procs) worst = std::max(worst, p.total_bytes);
  return worst;
}

LivenessTable analyze_liveness(const graph::TaskGraph& graph,
                               const Schedule& schedule) {
  LivenessTable out;
  out.procs.resize(static_cast<std::size_t>(schedule.num_procs));

  // Permanent bytes per owner.
  for (DataId d = 0; d < graph.num_data(); ++d) {
    const ProcId owner = graph.data(d).owner;
    RAPID_CHECK(owner >= 0 && owner < schedule.num_procs,
                "object without valid owner");
    out.procs[owner].permanent_bytes += graph.data(d).size_bytes;
  }

  // Volatile lifetimes per processor.
  for (ProcId p = 0; p < schedule.num_procs; ++p) {
    std::map<DataId, VolatileLifetime> live;
    const auto& order = schedule.order[p];
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      for (DataId d : graph.task(order[pos]).accesses()) {
        if (graph.data(d).owner == p) continue;  // permanent elsewhere
        auto [it, inserted] = live.try_emplace(
            d, VolatileLifetime{d, static_cast<std::int32_t>(pos),
                                static_cast<std::int32_t>(pos),
                                graph.data(d).size_bytes});
        if (!inserted) it->second.last_pos = static_cast<std::int32_t>(pos);
      }
    }
    ProcLiveness& proc = out.procs[p];
    proc.volatiles.reserve(live.size());
    for (auto& [d, lifetime] : live) proc.volatiles.push_back(lifetime);
    std::sort(proc.volatiles.begin(), proc.volatiles.end(),
              [](const VolatileLifetime& a, const VolatileLifetime& b) {
                if (a.first_pos != b.first_pos) return a.first_pos < b.first_pos;
                return a.object < b.object;
              });
    // Sweep: alive volume per position.
    std::vector<std::int64_t> delta(order.size() + 1, 0);
    std::int64_t vol_total = 0;
    for (const VolatileLifetime& v : proc.volatiles) {
      delta[v.first_pos] += v.size_bytes;
      delta[v.last_pos + 1] -= v.size_bytes;
      vol_total += v.size_bytes;
    }
    std::int64_t alive = 0, peak = 0;
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      alive += delta[pos];
      peak = std::max(peak, alive);
    }
    proc.peak_bytes = proc.permanent_bytes + peak;
    proc.total_bytes = proc.permanent_bytes + vol_total;
  }
  return out;
}

double memory_scalability(const graph::TaskGraph& graph,
                          const Schedule& schedule) {
  const LivenessTable table = analyze_liveness(graph, schedule);
  const std::int64_t s1 = graph.sequential_space();
  const std::int64_t sp = table.min_mem();
  if (sp == 0) return 1.0;
  return static_cast<double>(s1) / static_cast<double>(sp);
}

}  // namespace rapid::sched
