#include "rapid/sched/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::sched {

void Schedule::rebuild_index(TaskId num_tasks) {
  RAPID_CHECK(static_cast<int>(order.size()) == num_procs,
              "order size != num_procs");
  proc_of_task.assign(static_cast<std::size_t>(num_tasks),
                      graph::kInvalidProc);
  pos_of_task.assign(static_cast<std::size_t>(num_tasks), -1);
  for (ProcId p = 0; p < num_procs; ++p) {
    for (std::size_t i = 0; i < order[p].size(); ++i) {
      const TaskId t = order[p][i];
      RAPID_CHECK(t >= 0 && t < num_tasks, cat("unknown task ", t));
      RAPID_CHECK(proc_of_task[t] == graph::kInvalidProc,
                  cat("task ", t, " scheduled twice"));
      proc_of_task[t] = p;
      pos_of_task[t] = static_cast<std::int32_t>(i);
    }
  }
  for (TaskId t = 0; t < num_tasks; ++t) {
    RAPID_CHECK(proc_of_task[t] != graph::kInvalidProc,
                cat("task ", t, " not scheduled"));
  }
}

void Schedule::validate(const graph::TaskGraph& graph) const {
  RAPID_CHECK(num_procs > 0, "no processors");
  RAPID_CHECK(static_cast<TaskId>(proc_of_task.size()) == graph.num_tasks(),
              "index not built (call rebuild_index)");
  // Same-processor dependences must go forward in the order; cross-processor
  // ones are handled by messages at run time.
  for (const graph::Edge& e : graph.edges()) {
    if (e.redundant) continue;
    if (proc_of_task[e.src] != proc_of_task[e.dst]) continue;
    RAPID_CHECK(pos_of_task[e.src] < pos_of_task[e.dst],
                cat("schedule violates local dependence ",
                    graph.task(e.src).name, " -> ", graph.task(e.dst).name,
                    " on processor ", proc_of_task[e.src]));
  }
  // Owner-compute: every writer of an object runs on its owner.
  for (DataId d = 0; d < graph.num_data(); ++d) {
    for (TaskId w : graph.writers(d)) {
      RAPID_CHECK(proc_of_task[w] == graph.data(d).owner,
                  cat("task ", graph.task(w).name, " writes ",
                      graph.data(d).name, " but is not on its owner"));
    }
  }
}

std::string Schedule::gantt(const graph::TaskGraph& graph, int width) const {
  if (predicted_makespan <= 0.0) return "(no predicted times)\n";
  std::string out;
  const double scale = static_cast<double>(width) / predicted_makespan;
  for (ProcId p = 0; p < num_procs; ++p) {
    out += cat("P", p, " |");
    std::string lane(static_cast<std::size_t>(width) + 1, ' ');
    for (TaskId t : order[p]) {
      const int begin =
          static_cast<int>(std::floor(predicted_start[t] * scale));
      const int end = std::max(
          begin + 1, static_cast<int>(std::ceil(predicted_finish[t] * scale)));
      const std::string& name = graph.task(t).name;
      for (int c = begin; c < end && c <= width; ++c) {
        const std::size_t k = static_cast<std::size_t>(c - begin);
        lane[c] = k < name.size() ? name[k] : '=';
      }
    }
    out += lane;
    out += "\n";
  }
  out += cat("makespan: ", fixed(predicted_makespan, 1), " us\n");
  return out;
}

}  // namespace rapid::sched
