// Stage two of the paper's scheduling: ordering the tasks of each processor.
// Three policies share one deterministic list-scheduling simulation:
//
//  - RCP  (baseline, [20]): ready task with the longest critical path
//    (bottom level including communication delays) first. Time-efficient,
//    memory-oblivious.
//  - MPO  (§4.1, Figure 4): ready task with the highest memory priority
//    first — the fraction of the task's objects already resident on the
//    processor (permanent-local or previously allocated volatiles) — with
//    critical path as the tie-break.
//  - DTS  (§4.2): tasks execute slice by slice following a topological
//    order of the DCG's strongly connected components; critical path breaks
//    ties inside a slice. Optional slice merging (Figure 6) fuses
//    consecutive slices while their summed volatile demand fits the budget.
#pragma once

#include <optional>
#include <vector>

#include "rapid/graph/dcg.hpp"
#include "rapid/machine/params.hpp"
#include "rapid/sched/schedule.hpp"

namespace rapid::sched {

/// Bottom level of each task: longest path to an exit, where node weight is
/// the task's modeled execution time and cross-processor edges add the full
/// message arrival delay. This is the "critical path priority" of the paper.
std::vector<double> bottom_levels(const graph::TaskGraph& graph,
                                  const std::vector<ProcId>& proc_of_task,
                                  const machine::MachineParams& params);

/// Message arrival delay used consistently by the ordering simulation and
/// the run-time simulator: RMA overhead + latency + payload streaming.
double arrival_delay_us(const machine::MachineParams& params,
                        std::int64_t bytes);

/// Payload size of a dependence edge: the written object for true edges,
/// a small flag for anti/output synchronization edges.
std::int64_t edge_bytes(const graph::TaskGraph& graph, const graph::Edge& e);

Schedule schedule_rcp(const graph::TaskGraph& graph,
                      const std::vector<ProcId>& proc_of_task, int num_procs,
                      const machine::MachineParams& params);

Schedule schedule_mpo(const graph::TaskGraph& graph,
                      const std::vector<ProcId>& proc_of_task, int num_procs,
                      const machine::MachineParams& params);

/// DTS. If volatile_budget is set, consecutive slices are merged while the
/// sum of their per-slice volatile demands H(R, L) stays within the budget
/// (Figure 6); pass capacity_per_proc − max-permanent-bytes.
Schedule schedule_dts(const graph::TaskGraph& graph,
                      const std::vector<ProcId>& proc_of_task, int num_procs,
                      const machine::MachineParams& params,
                      std::optional<std::int64_t> volatile_budget = {});

/// H(R, L) for every slice: max over processors of the summed sizes of
/// distinct volatile objects that the slice's tasks access there (Def. 7).
std::vector<std::int64_t> slice_volatile_demand(
    const graph::TaskGraph& graph, const graph::SliceDecomposition& slices,
    const std::vector<ProcId>& proc_of_task, int num_procs);

/// Figure 6 greedy merge. Returns the merged slice index for every task.
/// merged_count receives the number of merged slices.
std::vector<std::int32_t> merge_slices(
    const graph::TaskGraph& graph, const graph::SliceDecomposition& slices,
    const std::vector<ProcId>& proc_of_task, int num_procs,
    std::int64_t volatile_budget, std::int32_t* merged_count = nullptr);

}  // namespace rapid::sched
