// Stage one of the paper's two-stage scheduling: cluster tasks for locality
// (owner-compute rule) and map clusters to processors for load balance.
// The factorization builders in rapid::num assign owners directly with the
// paper's cyclic mappings; the generic path here serves arbitrary task
// graphs registered through the public API.
#pragma once

#include <vector>

#include "rapid/graph/task_graph.hpp"

namespace rapid::sched {

using graph::DataId;
using graph::ProcId;
using graph::TaskId;

/// Assigns owner = (id mod p) to every data object (the paper's cyclic
/// mapping used in the Figure 2 example).
void assign_owners_cyclic(graph::TaskGraph& graph, int num_procs);

/// Owner-compute clustering: tasks that modify the same object belong to
/// one cluster; a task writing several objects merges their clusters
/// (union-find). Tasks that write nothing join the cluster of their first
/// read object.
struct Clustering {
  std::vector<std::int32_t> cluster_of_task;
  std::vector<std::int32_t> cluster_of_data;  // -1 if object is untouched
  std::int32_t num_clusters = 0;
  std::vector<double> cluster_flops;
};

Clustering owner_compute_clusters(const graph::TaskGraph& graph);

/// Maps clusters to processors by longest-processing-time-first on cluster
/// flops (load balancing criterion), then stamps object owners on the graph
/// and returns proc_of_task.
std::vector<ProcId> map_clusters_lpt(graph::TaskGraph& graph,
                                     const Clustering& clustering,
                                     int num_procs);

/// When object owners are already assigned (cyclic / 2-D grid mappings from
/// the application), derive proc_of_task by the owner-compute rule: a task
/// runs on the owner of the objects it writes (all writes must agree);
/// read-only tasks run on the owner of their first read.
std::vector<ProcId> owner_compute_tasks(const graph::TaskGraph& graph,
                                        int num_procs);

}  // namespace rapid::sched
