#include "rapid/obs/metrics.hpp"

#include <algorithm>
#include <bit>

namespace rapid::obs {

int Histogram::bucket_of(std::int64_t value) {
  if (value <= 0) return 0;
  return std::min(64 - std::countl_zero(static_cast<std::uint64_t>(value)),
                  kNumBuckets - 1);
}

std::int64_t Histogram::bucket_upper(int i) {
  if (i <= 0) return 0;
  return (std::int64_t{1} << std::min(i, 62)) - 1;
}

void Histogram::add(std::int64_t value) {
  value = std::max<std::int64_t>(value, 0);
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  sum_ += value;
  ++count_;
  ++buckets_[static_cast<std::size_t>(bucket_of(value))];
}

std::int64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) >= target) {
      // Upper edge of bucket i, clamped to the observed max.
      const std::int64_t edge =
          i == 0 ? 0 : (std::int64_t{1} << std::min(i, 62));
      return std::min(edge, max_);
    }
  }
  return max_;
}

JsonValue Histogram::to_json() const {
  JsonValue v = JsonValue::object();
  v["count"] = count_;
  v["sum"] = sum_;
  v["min"] = min();
  v["max"] = max_;
  v["mean"] = mean();
  v["p50"] = percentile(0.50);
  v["p90"] = percentile(0.90);
  v["p99"] = percentile(0.99);
  return v;
}

JsonValue MetricsSummary::to_json() const {
  JsonValue v = JsonValue::object();
  JsonValue residency = JsonValue::object();
  for (std::size_t s = 0;
       s < static_cast<std::size_t>(ProtoState::kCount); ++s) {
    residency[to_string(static_cast<ProtoState>(s))] = state_residency_us[s];
  }
  v["state_residency_us"] = std::move(residency);
  v["wait_us"] = wait_us.to_json();
  v["task_us"] = task_us.to_json();
  v["put_bytes"] = put_bytes.to_json();
  v["map_interval_us"] = map_interval_us.to_json();
  JsonValue hw = JsonValue::array();
  for (std::int64_t bytes : heap_high_water) hw.push_back(bytes);
  v["heap_high_water_bytes"] = std::move(hw);
  v["events"] = events;
  v["dropped"] = dropped;
  v["parks"] = parks;
  v["nacks"] = nacks;
  v["resends"] = resends;
  return v;
}

MetricsSummary derive_metrics(const Trace& trace) {
  MetricsSummary m;
  m.heap_high_water.assign(static_cast<std::size_t>(trace.num_procs()), 0);
  for (int q = 0; q < trace.num_procs(); ++q) {
    const std::vector<TraceEvent> events = trace.events(q);
    m.events += trace.recorded(q);
    m.dropped += trace.dropped(q);

    int cur_state = -1;
    std::int64_t state_since_ns = 0;
    std::int64_t task_begin_ns = -1;
    std::int64_t last_map_ns = -1;
    std::int64_t last_ns = 0;
    std::int64_t& high_water =
        m.heap_high_water[static_cast<std::size_t>(q)];

    for (const TraceEvent& e : events) {
      last_ns = e.t_ns;
      switch (e.kind) {
        case EventKind::kStateEnter: {
          if (cur_state >= 0) {
            const double span_us =
                static_cast<double>(e.t_ns - state_since_ns) * 1e-3;
            m.state_residency_us[static_cast<std::size_t>(cur_state)] +=
                span_us;
            if (cur_state == static_cast<int>(ProtoState::kRec)) {
              m.wait_us.add((e.t_ns - state_since_ns) / 1000);
            }
          }
          cur_state = e.a;
          state_since_ns = e.t_ns;
          break;
        }
        case EventKind::kTaskBegin:
          task_begin_ns = e.t_ns;
          break;
        case EventKind::kTaskEnd:
          if (task_begin_ns >= 0) {
            m.task_us.add((e.t_ns - task_begin_ns) / 1000);
            task_begin_ns = -1;
          }
          break;
        case EventKind::kPut:
          m.put_bytes.add(e.bytes);
          break;
        case EventKind::kMapBegin:
          if (last_map_ns >= 0) {
            m.map_interval_us.add((e.t_ns - last_map_ns) / 1000);
          }
          last_map_ns = e.t_ns;
          break;
        case EventKind::kHeapSample:
          high_water = std::max(high_water, e.bytes);
          break;
        case EventKind::kHeapPeak:
          high_water = std::max(high_water, e.bytes);
          break;
        case EventKind::kPark:
          ++m.parks;
          break;
        case EventKind::kNack:
          ++m.nacks;
          break;
        case EventKind::kResend:
          ++m.resends;
          break;
        default:
          break;
      }
    }
    // Close the final state span at the processor's last event.
    if (cur_state >= 0 && last_ns > state_since_ns) {
      m.state_residency_us[static_cast<std::size_t>(cur_state)] +=
          static_cast<double>(last_ns - state_since_ns) * 1e-3;
    }
  }
  return m;
}

}  // namespace rapid::obs
