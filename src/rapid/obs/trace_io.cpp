#include "rapid/obs/trace_io.hpp"

#include <cstdio>
#include <cstring>

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::obs {

namespace {

constexpr char kMagic[8] = {'R', 'A', 'P', 'I', 'D', 'T', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::int32_t proc;
  std::int64_t epoch_ns;
  std::int64_t count;
};

}  // namespace

bool save_proc_trace(const Trace& trace, int proc, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::vector<TraceEvent> events = trace.events(proc);
  FileHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.proc = proc;
  h.epoch_ns = trace.epoch_ns();
  h.count = static_cast<std::int64_t>(events.size());
  bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
  if (ok && !events.empty()) {
    ok = std::fwrite(events.data(), sizeof(TraceEvent), events.size(), f) ==
         events.size();
  }
  return std::fclose(f) == 0 && ok;
}

LoadedProcTrace load_proc_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw Error(cat("trace_io: cannot open ", path));
  FileHeader h{};
  if (std::fread(&h, sizeof(h), 1, f) != 1 ||
      std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0 ||
      h.version != kVersion || h.count < 0) {
    std::fclose(f);
    throw Error(cat("trace_io: bad header in ", path));
  }
  LoadedProcTrace out;
  out.proc = h.proc;
  out.epoch_ns = h.epoch_ns;
  out.events.resize(static_cast<std::size_t>(h.count));
  if (h.count > 0 &&
      std::fread(out.events.data(), sizeof(TraceEvent),
                 out.events.size(), f) != out.events.size()) {
    std::fclose(f);
    throw Error(cat("trace_io: truncated events in ", path));
  }
  std::fclose(f);
  return out;
}

void merge_proc_trace(Trace* dst, const LoadedProcTrace& src) {
  const std::int64_t rebase = src.epoch_ns - dst->epoch_ns();
  for (const TraceEvent& e : src.events) {
    std::int64_t t = e.t_ns + rebase;
    if (t < 0) t = 0;
    dst->record_at(src.proc, t, e.kind, e.a, e.b, e.c, e.bytes, e.d);
  }
}

}  // namespace rapid::obs
