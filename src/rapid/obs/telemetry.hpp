// Live telemetry plane for long-lived processes (the PR 9 RuntimeService).
// Where obs/metrics.hpp reduces one finished run's trace into a summary,
// this registry is updated *while* runs execute and snapshotted by a
// background sampler into Prometheus text exposition + JSON files that an
// operator (or rapid_top) can tail.
//
// Design rules:
//  - Registration is cold and mutex-guarded; it happens once at service
//    start. The returned Counter/Gauge/AtomicHistogram pointers are stable
//    for the registry's lifetime, so the hot path touches only atomics.
//  - Counters are monotone by contract. Sharded adds avoid a single
//    contended cache line under many worker threads; advance_to() ratchets
//    a counter up to an externally-maintained total (for sources that keep
//    their own monotone count, e.g. plan-cache hits) without double
//    counting. A counter uses add() or advance_to(), never both.
//  - Histograms reuse the post-run power-of-two bucket rule
//    (Histogram::bucket_of), so live and post-run distributions bucket
//    identically and can be reconciled exactly. Snapshots derive _count
//    from the bucket sum, which keeps cumulative buckets monotone even
//    when read concurrently with writers (each bucket is read once).
//  - Snapshot writers are pure functions over an immutable MetricsSnapshot;
//    the sampler writes via a temp file + atomic rename so a tailing
//    reader never observes a torn file.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "rapid/obs/metrics.hpp"
#include "rapid/support/json.hpp"

namespace rapid::obs {

/// Monotonically increasing counter. add() spreads contention over
/// cache-line-padded shards; advance_to() is a fetch_max-style ratchet for
/// sources that expose a running total instead of deltas.
class Counter {
 public:
  void add(std::int64_t delta) {
    if (delta <= 0) return;
    shard_for_thread().v.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Raise the counter to at least `total` (no-op if already there).
  /// Mutually exclusive with add() on the same counter.
  void advance_to(std::int64_t total) {
    std::int64_t cur = floor_.load(std::memory_order_relaxed);
    while (cur < total &&
           !floor_.compare_exchange_weak(cur, total,
                                         std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const {
    std::int64_t sum = floor_.load(std::memory_order_relaxed);
    for (const Shard& s : shards_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  static constexpr int kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };

  Shard& shard_for_thread() {
    // Hash of the thread id, computed once per thread. Perfect spreading
    // is not needed; avoiding one shared line under 8+ workers is.
    static thread_local std::size_t slot =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return shards_[slot % kShards];
  }

  std::array<Shard, kShards> shards_{};
  std::atomic<std::int64_t> floor_{0};
};

/// Last-write-wins instantaneous value (queue depth, reserved bytes,
/// heartbeat age). Double so seconds-valued gauges need no scaling.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Concurrent power-of-two histogram sharing Histogram's bucket rule.
/// observe() is two relaxed fetch_adds; merge() imports a finished run's
/// post-run Histogram (same buckets, so the import is exact).
class AtomicHistogram {
 public:
  static constexpr int kNumBuckets = Histogram::kNumBuckets;

  void observe(std::int64_t value) {
    if (value < 0) value = 0;
    buckets_[static_cast<std::size_t>(Histogram::bucket_of(value))]
        .fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  void merge(const Histogram& h) {
    for (int i = 0; i < kNumBuckets; ++i) {
      const std::int64_t n = h.bucket(i);
      if (n > 0) {
        buckets_[static_cast<std::size_t>(i)].fetch_add(
            n, std::memory_order_relaxed);
      }
    }
    sum_.fetch_add(h.sum(), std::memory_order_relaxed);
  }

  std::int64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<std::int64_t>, kNumBuckets> buckets_{};
  std::atomic<std::int64_t> sum_{0};
};

enum class MetricType : std::uint8_t { kCounter = 0, kGauge, kHistogram };

const char* to_string(MetricType t);

/// One label key=value pair; values are escaped at exposition time.
using Label = std::pair<std::string, std::string>;

/// Point-in-time copy of one series. Counter/gauge use `value`; histograms
/// use `buckets` (per-bucket, not cumulative) + `hist_sum`, with _count
/// derived as the bucket sum.
struct SeriesSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<Label> labels;
  double value = 0.0;
  std::int64_t int_value = 0;  // exact integer for counters
  std::array<std::int64_t, AtomicHistogram::kNumBuckets> buckets{};
  std::int64_t hist_sum = 0;

  std::int64_t hist_count() const {
    std::int64_t n = 0;
    for (std::int64_t b : buckets) n += b;
    return n;
  }
  /// Upper bound of the bucket holding quantile q (0 for empty).
  std::int64_t hist_percentile(double q) const;
};

struct MetricsSnapshot {
  std::int64_t wall_ns = 0;  // CLOCK_REALTIME, for snapshot freshness
  std::vector<SeriesSnapshot> series;

  JsonValue to_json() const;
};

/// Prometheus text exposition (one # HELP / # TYPE per family, label
/// values escaped, histograms as cumulative _bucket{le=...}/_sum/_count).
std::string prometheus_text(const MetricsSnapshot& snap);

/// Escape a label value per the exposition format: \\ -> \\\\, " -> \\",
/// newline -> \\n.
std::string escape_label_value(const std::string& v);

/// Thread-safe registry. counter()/gauge()/histogram() are idempotent on
/// (name, labels): a second registration returns the existing instrument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help,
                   std::vector<Label> labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               std::vector<Label> labels = {});
  AtomicHistogram& histogram(const std::string& name,
                             const std::string& help,
                             std::vector<Label> labels = {});

  MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type;
    std::vector<Label> labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<AtomicHistogram> histogram;
  };

  Entry& find_or_add(const std::string& name, const std::string& help,
                     MetricType type, std::vector<Label> labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Background sampler: every interval it runs the registered probes (which
/// refresh gauges / ratchet counters from live sources), snapshots the
/// registry, and writes `<path>` (Prometheus text) and `<path>.json` via
/// temp-file + rename. A write failure (bad directory, ENOSPC) logs one
/// warning, disables the sampler, and leaves the host process running.
struct TelemetrySamplerOptions {
  std::string path;       // exposition file; JSON sibling is path + ".json"
  int interval_ms = 500;  // clamped to >= 10
  bool write_json = true;
};

class TelemetrySampler {
 public:
  TelemetrySampler(MetricsRegistry& registry, TelemetrySamplerOptions opts);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Probes run on the sampler thread before each snapshot. Add them all
  /// before start().
  void add_probe(std::function<void(MetricsRegistry&)> probe);

  void start();
  /// Runs one final tick (so the last snapshot reflects the end state),
  /// then joins. Idempotent.
  void stop();

  /// One synchronous probe+snapshot+write cycle. Returns false once the
  /// sampler has been disabled by a write failure.
  bool tick();

  bool disabled() const {
    return disabled_.load(std::memory_order_relaxed);
  }
  std::int64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }

 private:
  void run_loop();
  bool write_snapshot(const MetricsSnapshot& snap);

  MetricsRegistry& registry_;
  TelemetrySamplerOptions opts_;
  std::vector<std::function<void(MetricsRegistry&)>> probes_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::atomic<bool> disabled_{false};
  std::atomic<std::int64_t> ticks_{0};
};

/// Write `text` to `path` atomically (write path.tmp, fsync-free rename).
/// Returns false on any I/O failure.
bool atomic_write_file(const std::string& path, const std::string& text);

}  // namespace rapid::obs
