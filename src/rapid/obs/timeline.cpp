#include "rapid/obs/timeline.hpp"

#include <algorithm>

namespace rapid::obs {

OccupancyProfile build_occupancy(const Trace& trace) {
  OccupancyProfile profile;
  const std::size_t p = static_cast<std::size_t>(trace.num_procs());
  profile.per_proc.resize(p);
  profile.high_water.assign(p, 0);
  for (int q = 0; q < trace.num_procs(); ++q) {
    std::int64_t& hw = profile.high_water[static_cast<std::size_t>(q)];
    for (const TraceEvent& e : trace.events(q)) {
      if (e.kind == EventKind::kHeapSample) {
        profile.per_proc[static_cast<std::size_t>(q)].push_back(
            {e.t_ns, e.bytes});
        hw = std::max(hw, e.bytes);
      } else if (e.kind == EventKind::kHeapPeak) {
        hw = std::max(hw, e.bytes);
      }
    }
  }
  return profile;
}

std::string occupancy_csv(const OccupancyProfile& profile) {
  std::string out = "proc,t_ns,bytes\n";
  for (std::size_t q = 0; q < profile.per_proc.size(); ++q) {
    for (const OccupancySample& s : profile.per_proc[q]) {
      out += std::to_string(q);
      out += ',';
      out += std::to_string(s.t_ns);
      out += ',';
      out += std::to_string(s.bytes);
      out += '\n';
    }
  }
  return out;
}

}  // namespace rapid::obs
