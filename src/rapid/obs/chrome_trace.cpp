#include "rapid/obs/chrome_trace.hpp"

#include <deque>
#include <map>
#include <tuple>
#include <utility>

namespace rapid::obs {

namespace {

double to_us(std::int64_t t_ns) { return static_cast<double>(t_ns) * 1e-3; }

std::string task_name(const TraceLabels& labels, std::int32_t id) {
  if (id >= 0 && static_cast<std::size_t>(id) < labels.tasks.size()) {
    return labels.tasks[static_cast<std::size_t>(id)];
  }
  return "task" + std::to_string(id);
}

std::string object_name(const TraceLabels& labels, std::int32_t id) {
  if (id >= 0 && static_cast<std::size_t>(id) < labels.objects.size()) {
    return labels.objects[static_cast<std::size_t>(id)];
  }
  return "obj" + std::to_string(id);
}

JsonValue event_base(const char* ph, const std::string& name,
                     const char* cat, std::int64_t pid, int tid,
                     double ts_us) {
  JsonValue e = JsonValue::object();
  e["name"] = name;
  e["cat"] = cat;
  e["ph"] = ph;
  e["ts"] = ts_us;
  e["pid"] = pid;
  e["tid"] = tid;
  return e;
}

JsonValue complete_span(const std::string& name, const char* cat,
                        std::int64_t pid, int tid, std::int64_t begin_ns,
                        std::int64_t end_ns) {
  JsonValue e = event_base("X", name, cat, pid, tid, to_us(begin_ns));
  e["dur"] = to_us(end_ns > begin_ns ? end_ns - begin_ns : 0);
  return e;
}

JsonValue instant(const std::string& name, const char* cat,
                  std::int64_t pid, int tid, std::int64_t t_ns) {
  JsonValue e = event_base("i", name, cat, pid, tid, to_us(t_ns));
  e["s"] = "t";  // thread-scoped instant
  return e;
}

JsonValue counter(const std::string& name, std::int64_t pid, int tid,
                  std::int64_t t_ns, std::int64_t bytes) {
  JsonValue e = event_base("C", name, "memory", pid, tid, to_us(t_ns));
  JsonValue args = JsonValue::object();
  args["bytes"] = bytes;
  e["args"] = std::move(args);
  return e;
}

}  // namespace

JsonValue chrome_trace(const Trace& trace, const TraceLabels& labels) {
  JsonValue events = JsonValue::array();

  // Multi-tenant service runs merge many traces into one document; using
  // the owning run id as the Chrome pid splits them into separate process
  // groups in the viewer. Untagged single-run traces keep pid 0.
  const std::int64_t pid = trace.run_id();

  {
    JsonValue meta = JsonValue::object();
    meta["name"] = "process_name";
    meta["ph"] = "M";
    meta["pid"] = pid;
    meta["tid"] = 0;
    JsonValue args = JsonValue::object();
    args["name"] =
        pid == 0 ? std::string("rapid run")
                 : "rapid run " + std::to_string(pid);
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));
  }

  // Track metadata: one tid per processor, named and sorted by id.
  for (int q = 0; q < trace.num_procs(); ++q) {
    JsonValue meta = JsonValue::object();
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = pid;
    meta["tid"] = q;
    JsonValue args = JsonValue::object();
    args["name"] = "proc " + std::to_string(q);
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));
  }

  // Flow arrows publish -> consume need matching across processors, and
  // the processors are scanned in id order while dataflow goes both ways,
  // so matching runs as a separate two-pass phase: collect every
  // publication first (one arrow per object in staging order — the PR 7
  // put batcher publishes several objects back-to-back and each must keep
  // its own arrow), then resolve consumptions against them. Primary key
  // is (object, reader, put-sequence stamp) — the same release/acquire
  // identity the conformance checker uses — with (object, version,
  // reader) as the fallback for unstamped records. FIFO per key so
  // re-publications never overwrite an earlier arrow.
  struct FlowEnd {
    int tid;
    std::int64_t t_ns;
    std::string name;
    bool start;  // true = "s" (publisher side), false = "f" (consumer)
    int id;
  };
  std::vector<FlowEnd> flows;
  std::map<std::tuple<std::int32_t, std::int32_t, std::uint16_t>,
           std::deque<int>>
      by_seq;  // (object, reader, seq != 0) -> publish flow ids
  std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t>,
           std::deque<int>>
      by_version;  // (object, version, reader) -> publish flow ids
  int next_flow_id = 1;

  for (int q = 0; q < trace.num_procs(); ++q) {
    for (const TraceEvent& e : trace.events(q)) {
      if (e.kind != EventKind::kPutPublish) continue;
      const int id = next_flow_id++;
      flows.push_back({q, e.t_ns,
                       object_name(labels, e.a) + " v" +
                           std::to_string(e.b),
                       true, id});
      if (e.d != 0) {
        by_seq[std::make_tuple(e.a, e.c, e.d)].push_back(id);
      } else {
        by_version[std::make_tuple(e.a, e.b, e.c)].push_back(id);
      }
    }
  }

  for (int q = 0; q < trace.num_procs(); ++q) {
    const std::vector<TraceEvent> evs = trace.events(q);
    const std::int64_t last_ns = evs.empty() ? 0 : evs.back().t_ns;

    int cur_state = -1;
    std::int64_t state_since_ns = 0;
    std::int32_t open_task = -1;
    std::int64_t task_begin_ns = 0;

    for (const TraceEvent& e : evs) {
      switch (e.kind) {
        case EventKind::kStateEnter: {
          if (cur_state >= 0 && e.t_ns > state_since_ns) {
            events.push_back(complete_span(
                to_string(static_cast<ProtoState>(cur_state)), "state",
                pid, q, state_since_ns, e.t_ns));
          }
          cur_state = e.a;
          state_since_ns = e.t_ns;
          break;
        }
        case EventKind::kTaskBegin:
          open_task = e.a;
          task_begin_ns = e.t_ns;
          break;
        case EventKind::kTaskEnd:
          // Ring overflow can orphan a begin or an end; only emit pairs.
          if (open_task == e.a) {
            events.push_back(complete_span(task_name(labels, e.a), "task",
                                           pid, q, task_begin_ns, e.t_ns));
            open_task = -1;
          }
          break;
        case EventKind::kConsume: {
          // Reader side: this proc is the reader. Try the sequence plane
          // first, then the version fallback.
          int id = -1;
          if (e.d != 0) {
            auto it = by_seq.find(std::make_tuple(e.a, q, e.d));
            if (it != by_seq.end() && !it->second.empty()) {
              id = it->second.front();
              it->second.pop_front();
            }
          }
          if (id < 0) {
            auto it = by_version.find(std::make_tuple(e.a, e.b, q));
            if (it != by_version.end() && !it->second.empty()) {
              id = it->second.front();
              it->second.pop_front();
            }
          }
          if (id >= 0) {
            flows.push_back({q, e.t_ns,
                             object_name(labels, e.a) + " v" +
                                 std::to_string(e.b),
                             false, id});
          }
          break;
        }
        case EventKind::kMapAlloc:
          events.push_back(instant("alloc " + object_name(labels, e.a),
                                   "map", pid, q, e.t_ns));
          break;
        case EventKind::kMapFree:
          events.push_back(instant("free " + object_name(labels, e.a),
                                   "map", pid, q, e.t_ns));
          break;
        case EventKind::kHeapSample:
          events.push_back(counter("heap p" + std::to_string(q), pid, q,
                                   e.t_ns, e.bytes));
          break;
        case EventKind::kNack:
          events.push_back(instant(
              e.a >= 0 ? "nack " + object_name(labels, e.a) : "nack flag",
              "recovery", pid, q, e.t_ns));
          break;
        case EventKind::kResend:
          events.push_back(instant("resend " + object_name(labels, e.a),
                                   "recovery", pid, q, e.t_ns));
          break;
        case EventKind::kAddrPkgSend:
          events.push_back(instant("addr_pkg -> p" + std::to_string(e.c),
                                   "protocol", pid, q, e.t_ns));
          break;
        case EventKind::kAddrPkgInstall:
          events.push_back(
              instant("addr_pkg install", "protocol", pid, q, e.t_ns));
          break;
        case EventKind::kFlagSend:
          events.push_back(instant("flag " + task_name(labels, e.a) +
                                       " -> p" + std::to_string(e.c),
                                   "protocol", pid, q, e.t_ns));
          break;
        case EventKind::kPark:
          events.push_back(instant("park", "sched", pid, q, e.t_ns));
          break;
        default:
          break;
      }
    }
    // Close the last open state span at the processor's final event.
    if (cur_state >= 0 && last_ns > state_since_ns) {
      events.push_back(
          complete_span(to_string(static_cast<ProtoState>(cur_state)),
                        "state", pid, q, state_since_ns, last_ns));
    }
  }

  for (const FlowEnd& f : flows) {
    JsonValue e = event_base(f.start ? "s" : "f", f.name, "dataflow", pid,
                             f.tid, to_us(f.t_ns));
    e["id"] = f.id;
    if (!f.start) e["bp"] = "e";
    events.push_back(std::move(e));
  }

  JsonValue doc = JsonValue::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

}  // namespace rapid::obs
