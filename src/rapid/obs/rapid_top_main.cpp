// rapid_top: a one-screen operator view over a rapid_serve telemetry
// snapshot. Tails the Prometheus exposition file the service's sampler
// writes atomically (--metrics-file) and renders runs/sec, p50/p99
// admission-to-terminal latency, a capacity utilization bar, shed/expiry
// counters, queue/worker occupancy, and per-rank shm liveness.
//
//   ./rapid_top --file=/tmp/rapid.prom                 # live, 1s refresh
//   ./rapid_top --file=/tmp/rapid.prom --frames=1      # one frame (CI)
//
// The text exposition format is the parse surface on purpose: the repo's
// JSON emitter is write-only by design, and the .prom file is what any
// external scraper consumes anyway — parsing it here keeps one format
// load-bearing end to end.
//
// Exit codes (support/exit_codes.hpp): 0 rendered every requested frame;
// 1 findings (snapshot exists but does not parse as exposition text);
// 2 infra error (bad flags, snapshot file missing/unreadable).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rapid/obs/telemetry.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/exit_codes.hpp"
#include "rapid/support/flags.hpp"
#include "rapid/support/stopwatch.hpp"

namespace {

using namespace rapid;

struct Sample {
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// family name -> its samples in file order. Histogram series arrive as
/// their expanded _bucket/_sum/_count families.
using Families = std::map<std::string, std::vector<Sample>>;

std::string unescape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == '\\' && i + 1 < v.size()) {
      ++i;
      out += v[i] == 'n' ? '\n' : v[i];
    } else {
      out += v[i];
    }
  }
  return out;
}

/// Parses one exposition line ("name{k=\"v\",...} value" | "name value").
/// Returns false (with *err set) on malformed input.
bool parse_sample_line(const std::string& line, Families* out,
                       std::string* err) {
  const std::size_t brace = line.find('{');
  const std::size_t name_end =
      brace != std::string::npos ? brace : line.find(' ');
  if (name_end == std::string::npos || name_end == 0) {
    *err = "no metric name in: " + line;
    return false;
  }
  Sample s;
  const std::string name = line.substr(0, name_end);
  std::size_t pos = name_end;
  if (brace != std::string::npos) {
    pos = brace + 1;
    while (pos < line.size() && line[pos] != '}') {
      const std::size_t eq = line.find('=', pos);
      if (eq == std::string::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        *err = "malformed label in: " + line;
        return false;
      }
      const std::string key = line.substr(pos, eq - pos);
      std::string value;
      std::size_t i = eq + 2;
      for (; i < line.size() && line[i] != '"'; ++i) {
        value += line[i];
        if (line[i] == '\\' && i + 1 < line.size()) value += line[++i];
      }
      if (i >= line.size()) {
        *err = "unterminated label value in: " + line;
        return false;
      }
      s.labels[key] = unescape_label_value(line.substr(eq + 2, i - eq - 2));
      pos = i + 1;
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size() || line[pos] != '}') {
      *err = "unterminated label block in: " + line;
      return false;
    }
    ++pos;
  }
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size()) {
    *err = "no value in: " + line;
    return false;
  }
  const std::string value_str = line.substr(pos);
  char* end = nullptr;
  s.value = std::strtod(value_str.c_str(), &end);
  if (end == value_str.c_str()) {
    *err = "unparsable value in: " + line;
    return false;
  }
  (*out)[name].push_back(std::move(s));
  return true;
}

bool parse_prometheus(const std::string& text, Families* out,
                      std::string* err) {
  std::istringstream in(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (!parse_sample_line(line, out, err)) return false;
    ++samples;
  }
  if (samples == 0) {
    *err = "no samples in snapshot";
    return false;
  }
  return true;
}

double value_of(const Families& fam, const std::string& name,
                double fallback = 0.0) {
  const auto it = fam.find(name);
  if (it == fam.end() || it->second.empty()) return fallback;
  return it->second.front().value;
}

/// Quantile from a family's cumulative _bucket samples (upper edge of the
/// bucket reaching q). Returns -1 when the histogram is absent/empty.
double histogram_quantile(const Families& fam, const std::string& name,
                          double q) {
  const auto it = fam.find(name + "_bucket");
  if (it == fam.end()) return -1.0;
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
  for (const Sample& s : it->second) {
    const auto le = s.labels.find("le");
    if (le == s.labels.end()) continue;
    const double edge = le->second == "+Inf"
                            ? std::numeric_limits<double>::infinity()
                            : std::strtod(le->second.c_str(), nullptr);
    buckets.emplace_back(edge, s.value);
  }
  std::sort(buckets.begin(), buckets.end());
  if (buckets.empty() || buckets.back().second <= 0) return -1.0;
  const double total = buckets.back().second;
  double prev_edge = 0.0;
  for (const auto& [edge, cum] : buckets) {
    if (cum >= q * total) {
      return std::isinf(edge) ? prev_edge : edge;
    }
    prev_edge = edge;
  }
  return buckets.back().first;
}

std::string bar(double frac, int width) {
  frac = std::clamp(frac, 0.0, 1.0);
  const int filled = static_cast<int>(std::lround(frac * width));
  std::string out;
  for (int i = 0; i < width; ++i) out += i < filled ? '#' : '.';
  return out;
}

std::string fmt_bytes(double b) {
  char buf[64];
  if (b >= double{1} * (1 << 30)) {
    std::snprintf(buf, sizeof(buf), "%.1fGiB", b / (1 << 30));
  } else if (b >= 1 << 20) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB", b / (1 << 20));
  } else if (b >= 1 << 10) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB", b / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", b);
  }
  return buf;
}

std::string fmt_us(double us) {
  char buf[64];
  if (us < 0) return "n/a";
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fs", us * 1e-6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fms", us * 1e-3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fus", us);
  }
  return buf;
}

/// One rendered frame. `prev_completed`/`dt_seconds` feed the live
/// runs/sec; a first (or only) frame falls back to completed/uptime.
std::string render(const Families& fam, double prev_completed,
                   double dt_seconds) {
  std::ostringstream out;
  const double submitted = value_of(fam, "rapid_runs_submitted_total");
  const double completed = value_of(fam, "rapid_runs_completed_total");
  const double failed = value_of(fam, "rapid_runs_failed_total");
  const double rejected = value_of(fam, "rapid_runs_rejected_total");
  const double shed = value_of(fam, "rapid_runs_shed_total");
  const double expired = value_of(fam, "rapid_runs_expired_total");
  const double uptime = value_of(fam, "rapid_uptime_seconds");
  const double queue = value_of(fam, "rapid_queue_depth");
  const double in_flight = value_of(fam, "rapid_runs_in_flight");
  const double workers = value_of(fam, "rapid_workers");
  const double reserved = value_of(fam, "rapid_reserved_bytes");
  const double budget = value_of(fam, "rapid_budget_bytes");

  double runs_per_sec = 0.0;
  if (dt_seconds > 0 && completed >= prev_completed) {
    runs_per_sec = (completed - prev_completed) / dt_seconds;
  } else if (uptime > 0) {
    runs_per_sec = completed / uptime;
  }

  out << "rapid_top — service telemetry (uptime "
      << (uptime > 0 ? std::to_string(uptime).substr(0, 6) + "s" : "n/a")
      << ")\n\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "  runs/sec %8.2f   in flight %3.0f/%-3.0f   queue %3.0f\n",
                runs_per_sec, in_flight, workers, queue);
  out << line;
  out << "  latency  p50 " << fmt_us(histogram_quantile(fam, "rapid_run_latency_us", 0.50))
      << "  p99 " << fmt_us(histogram_quantile(fam, "rapid_run_latency_us", 0.99))
      << "  (admission -> terminal)\n";
  const double frac = budget > 0 ? reserved / budget : 0.0;
  std::snprintf(line, sizeof(line), "  capacity [%s] %s / %s (%.0f%%)\n",
                bar(frac, 30).c_str(), fmt_bytes(reserved).c_str(),
                fmt_bytes(budget).c_str(), frac * 100.0);
  out << line;
  std::snprintf(line, sizeof(line),
                "  runs     submitted %.0f  completed %.0f  failed %.0f  "
                "rejected %.0f  shed %.0f  expired %.0f\n",
                submitted, completed, failed, rejected, shed, expired);
  out << line;

  // Per-rank shm liveness, present only while cross-process sessions run.
  const auto ages = fam.find("rapid_rank_heartbeat_age_seconds");
  if (ages != fam.end() && !ages->second.empty()) {
    const auto alive_it = fam.find("rapid_rank_alive");
    const auto nacks_it = fam.find("rapid_rank_nacks_total");
    const auto resends_it = fam.find("rapid_rank_resends_total");
    const auto by_rank = [](const Families::const_iterator it, bool ok,
                            const std::string& rank) {
      if (!ok) return 0.0;
      for (const Sample& s : it->second) {
        const auto r = s.labels.find("rank");
        if (r != s.labels.end() && r->second == rank) return s.value;
      }
      return 0.0;
    };
    out << "\n  shm ranks (sessions "
        << value_of(fam, "rapid_shm_sessions") << "):\n";
    for (const Sample& s : ages->second) {
      const auto r = s.labels.find("rank");
      if (r == s.labels.end()) continue;
      const bool alive =
          by_rank(alive_it, alive_it != fam.end(), r->second) > 0;
      std::snprintf(
          line, sizeof(line),
          "    rank %-3s %-6s beat %8.3fs ago   nacks %-6.0f resends %.0f\n",
          r->second.c_str(), alive ? "alive" : "STALE", s.value,
          by_rank(nacks_it, nacks_it != fam.end(), r->second),
          by_rank(resends_it, resends_it != fam.end(), r->second));
      out << line;
    }
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("file", "", "telemetry snapshot (Prometheus text) to tail");
  flags.define("interval-ms", "1000", "refresh period between frames");
  flags.define("frames", "0",
               "frames to render then exit (0 = until interrupted)");
  try {
    flags.parse(argc, argv);
  } catch (const rapid::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitInfraError;
  }
  if (flags.help_requested()) return kExitOk;
  if (flags.get("file").empty()) {
    std::fprintf(stderr, "rapid_top: --file is required\n");
    return kExitInfraError;
  }

  const std::int64_t frames = flags.get_int("frames");
  const std::int64_t interval_ms = std::max<std::int64_t>(
      flags.get_int("interval-ms"), 10);

  double prev_completed = 0.0;
  bool have_prev = false;
  Stopwatch since_frame;
  for (std::int64_t frame = 0; frames == 0 || frame < frames; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    std::ifstream in(flags.get("file"), std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "rapid_top: cannot read %s\n",
                   flags.get("file").c_str());
      return kExitInfraError;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    Families fam;
    std::string err;
    if (!parse_prometheus(buf.str(), &fam, &err)) {
      std::fprintf(stderr, "rapid_top: %s is not exposition text: %s\n",
                   flags.get("file").c_str(), err.c_str());
      return kExitFindings;
    }

    const double dt = have_prev ? since_frame.seconds() : 0.0;
    since_frame.reset();
    if (frame > 0) std::printf("\033[H\033[2J");  // home + clear
    std::printf("%s", render(fam, prev_completed, dt).c_str());
    std::fflush(stdout);
    prev_completed = value_of(fam, "rapid_runs_completed_total");
    have_prev = true;
  }
  return kExitOk;
}
