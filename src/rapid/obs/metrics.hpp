// Metrics derived from a Trace after a run: state-residency per protocol
// state, wait/task/put/MAP-interval distributions, and per-processor heap
// high-water marks. Kept separate from the tracer so the hot path stays a
// fixed-size append; everything here is post-run reduction.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "rapid/obs/trace.hpp"
#include "rapid/support/json.hpp"

namespace rapid::obs {

/// Power-of-two-bucketed histogram (bucket i holds values in
/// [2^(i-1), 2^i), bucket 0 holds 0). Fixed footprint, exact count/sum/
/// min/max, percentile estimates at bucket resolution.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Bucket index for a value: 0 for values <= 0, otherwise the position
  /// of the highest set bit + 1, capped at kNumBuckets - 1. Shared with
  /// the live telemetry plane (obs/telemetry.hpp) so post-run and live
  /// histograms bucket identically.
  static int bucket_of(std::int64_t value);

  /// Largest integer value that lands in bucket i (2^i - 1; bucket 0
  /// holds only 0). The top bucket is open-ended ("+Inf" in exposition).
  static std::int64_t bucket_upper(int i);

  void add(std::int64_t value);

  std::int64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }

  std::int64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// Upper bound of the bucket containing the q-th quantile (q in [0,1]).
  std::int64_t percentile(double q) const;

  JsonValue to_json() const;

 private:
  static constexpr int kBuckets = kNumBuckets;
  std::array<std::int64_t, kBuckets> buckets_{};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Post-run metrics over all processors. Durations are in microseconds
/// (matching RunReport's *_us fields); sizes in bytes.
struct MetricsSummary {
  /// Total residency per protocol state, summed across processors.
  std::array<double, static_cast<std::size_t>(ProtoState::kCount)>
      state_residency_us{};

  Histogram wait_us;          // REC-state span durations
  Histogram task_us;          // task begin->end durations
  Histogram put_bytes;        // content put sizes
  Histogram map_interval_us;  // gaps between consecutive MAPs on one proc

  std::vector<std::int64_t> heap_high_water;  // per-proc, from kHeapPeak

  std::int64_t events = 0;
  std::int64_t dropped = 0;
  std::int64_t parks = 0;
  std::int64_t nacks = 0;
  std::int64_t resends = 0;

  JsonValue to_json() const;
};

/// Scan every processor's event stream and reduce. State spans are closed
/// at that processor's last event; rings that overflowed contribute only
/// their surviving suffix.
MetricsSummary derive_metrics(const Trace& trace);

}  // namespace rapid::obs
