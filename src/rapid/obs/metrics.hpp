// Metrics derived from a Trace after a run: state-residency per protocol
// state, wait/task/put/MAP-interval distributions, and per-processor heap
// high-water marks. Kept separate from the tracer so the hot path stays a
// fixed-size append; everything here is post-run reduction.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "rapid/obs/trace.hpp"
#include "rapid/support/json.hpp"

namespace rapid::obs {

/// Power-of-two-bucketed histogram (bucket i holds values in
/// [2^(i-1), 2^i), bucket 0 holds 0). Fixed footprint, exact count/sum/
/// min/max, percentile estimates at bucket resolution.
class Histogram {
 public:
  void add(std::int64_t value);

  std::int64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// Upper bound of the bucket containing the q-th quantile (q in [0,1]).
  std::int64_t percentile(double q) const;

  JsonValue to_json() const;

 private:
  static constexpr int kBuckets = 64;
  std::array<std::int64_t, kBuckets> buckets_{};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Post-run metrics over all processors. Durations are in microseconds
/// (matching RunReport's *_us fields); sizes in bytes.
struct MetricsSummary {
  /// Total residency per protocol state, summed across processors.
  std::array<double, static_cast<std::size_t>(ProtoState::kCount)>
      state_residency_us{};

  Histogram wait_us;          // REC-state span durations
  Histogram task_us;          // task begin->end durations
  Histogram put_bytes;        // content put sizes
  Histogram map_interval_us;  // gaps between consecutive MAPs on one proc

  std::vector<std::int64_t> heap_high_water;  // per-proc, from kHeapPeak

  std::int64_t events = 0;
  std::int64_t dropped = 0;
  std::int64_t parks = 0;
  std::int64_t nacks = 0;
  std::int64_t resends = 0;

  JsonValue to_json() const;
};

/// Scan every processor's event stream and reduce. State spans are closed
/// at that processor's last event; rings that overflowed contribute only
/// their surviving suffix.
MetricsSummary derive_metrics(const Trace& trace);

}  // namespace rapid::obs
