// Binary save/load of one processor's trace ring, plus merge into a
// combined Trace. The multi-process (shm) executor uses this: each worker
// process dumps its own rank's ring at clean exit, and the coordinator
// merges the per-rank files into the caller's Trace with timestamps
// rebased onto the coordinator's epoch — CLOCK_MONOTONIC is shared across
// processes on one machine, so the merged timeline is consistent and the
// conformance checker's put-sequence stamps (which carry the real
// happens-before edges) are unaffected by any residual clock skew.
#pragma once

#include <string>
#include <vector>

#include "rapid/obs/trace.hpp"

namespace rapid::obs {

struct LoadedProcTrace {
  int proc = -1;
  std::int64_t epoch_ns = 0;
  std::vector<TraceEvent> events;  // oldest first
};

/// Writes `proc`'s ring (oldest first) to `path`. Returns false on I/O
/// failure (the caller logs and moves on — trace loss never fails a run).
bool save_proc_trace(const Trace& trace, int proc, const std::string& path);

/// Reads a file written by save_proc_trace. Throws rapid::Error on a
/// missing/corrupt file.
LoadedProcTrace load_proc_trace(const std::string& path);

/// Appends src's events into dst's ring for src.proc, rebasing each
/// timestamp from src's epoch onto dst's.
void merge_proc_trace(Trace* dst, const LoadedProcTrace& src);

}  // namespace rapid::obs
