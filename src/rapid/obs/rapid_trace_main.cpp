// rapid_trace: run a seed workload under the event tracer and emit the
// observability artifacts — a Chrome trace_event JSON (open in Perfetto or
// chrome://tracing), a per-processor memory-occupancy CSV, and a text
// summary of state residencies, wait/put/MAP distributions and heap
// high-water marks vs. capacity and the paper's S1/p bound.
//
//   ./rapid_trace                                  # Cholesky, p=8, threaded
//   ./rapid_trace --workload=lu --procs=4 --executor=sim --out=lu_p4
//
// The run is also a self-check of the tracing plane: it asserts that every
// processor's trace carries all five protocol states (REC/EXE/SND/MAP/END),
// that MAP alloc/free events are present, and that the occupancy profile's
// high-water mark reconstructs the MAP engine's reported peak exactly.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "rapid/num/cholesky_app.hpp"
#include "rapid/num/lu_app.hpp"
#include "rapid/num/workloads.hpp"
#include "rapid/obs/chrome_trace.hpp"
#include "rapid/obs/metrics.hpp"
#include "rapid/obs/timeline.hpp"
#include "rapid/obs/trace.hpp"
#include "rapid/rt/plan.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/exit_codes.hpp"
#include "rapid/support/flags.hpp"
#include "rapid/support/str.hpp"
#include "rapid/support/table.hpp"

namespace {

using namespace rapid;

struct Workload {
  std::string name;
  graph::TaskGraph* graph = nullptr;
  std::shared_ptr<num::CholeskyApp> cholesky;
  std::shared_ptr<num::LuApp> lu;
};

Workload make_workload(const std::string& name, double scale,
                       sparse::Index block, int procs) {
  Workload w;
  w.name = name;
  if (name == "cholesky") {
    auto workload = num::bcsstk24_like(scale);
    w.cholesky = std::make_shared<num::CholeskyApp>(
        num::CholeskyApp::build(std::move(workload.matrix), block, procs));
    w.graph = &w.cholesky->mutable_graph();
  } else if (name == "lu") {
    auto workload = num::goodwin_like(scale);
    w.lu = std::make_shared<num::LuApp>(
        num::LuApp::build(std::move(workload.matrix), block, procs));
    w.graph = &w.lu->mutable_graph();
  } else {
    RAPID_FAIL(cat("unknown workload '", name, "' (expected cholesky|lu)"));
  }
  return w;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  RAPID_CHECK(f != nullptr, cat("cannot open ", path, " for writing"));
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  RAPID_CHECK(written == content.size(), cat("short write to ", path));
}

/// The tracing plane's own acceptance checks (see ISSUE/docs): five states
/// per processor, MAP events present where MAPs ran, and an occupancy
/// high-water mark that equals the MAP engine's reported peak exactly.
/// Returns the findings instead of throwing: a broken trace is the thing
/// this tool checks (kExitFindings), not an infrastructure failure.
std::vector<std::string> check_trace(const obs::Trace& trace,
                                     const obs::OccupancyProfile& occ,
                                     const rt::RunReport& report) {
  std::vector<std::string> findings;
  const int p = trace.num_procs();
  std::int64_t map_allocs = 0;
  std::int64_t map_frees = 0;
  for (int q = 0; q < p; ++q) {
    bool state_seen[static_cast<std::size_t>(obs::ProtoState::kCount)] = {};
    for (const obs::TraceEvent& e : trace.events(q)) {
      if (e.kind == obs::EventKind::kStateEnter) {
        state_seen[static_cast<std::size_t>(e.a)] = true;
      } else if (e.kind == obs::EventKind::kMapAlloc) {
        ++map_allocs;
      } else if (e.kind == obs::EventKind::kMapFree) {
        ++map_frees;
      }
    }
    for (std::size_t s = 0;
         s < static_cast<std::size_t>(obs::ProtoState::kCount); ++s) {
      if (!state_seen[s]) {
        findings.push_back(cat("processor ", q, " trace is missing state ",
                               obs::to_string(static_cast<obs::ProtoState>(s))));
      }
    }
    if (occ.high_water[static_cast<std::size_t>(q)] !=
        report.peak_bytes_per_proc[static_cast<std::size_t>(q)]) {
      findings.push_back(
          cat("processor ", q, " reconstructed high-water ",
              occ.high_water[static_cast<std::size_t>(q)],
              " != MAP engine peak ",
              report.peak_bytes_per_proc[static_cast<std::size_t>(q)]));
    }
  }
  if (map_allocs == 0) {
    findings.push_back("no MAP alloc events in an active-memory run");
  }
  if (map_frees == 0) {
    findings.push_back("no MAP free events in an active-memory run");
  }
  return findings;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("workload", "cholesky", "cholesky|lu");
  flags.define("scale", "0.5", "workload scale in (0,1]");
  flags.define("block", "12", "block size for the matrix partition");
  flags.define("procs", "8", "number of processors");
  flags.define("frac", "0.6",
               "active-memory capacity as a fraction of TOT (escalated in "
               "0.1 steps until the run executes)");
  flags.define("executor", "threaded",
               "threaded (wall-clock) or sim (modeled time)");
  flags.define("events", "65536", "trace ring capacity per processor");
  flags.define("out", "rapid_trace_out",
               "output prefix: <out>.trace.json + <out>.occupancy.csv");
  try {
    flags.parse(argc, argv);
  } catch (const rapid::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitInfraError;
  }
  if (flags.help_requested()) return kExitOk;

  try {
  const int procs = static_cast<int>(flags.get_int("procs"));
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const std::string executor = flags.get("executor");
  const bool threaded = executor == "threaded";
  RAPID_CHECK(threaded || executor == "sim",
              cat("unknown executor '", executor, "'"));

  const Workload w =
      make_workload(flags.get("workload"), scale, block, procs);
  const auto params = machine::MachineParams::cray_t3d(procs);
  const auto assignment = sched::owner_compute_tasks(*w.graph, procs);
  const auto schedule =
      sched::schedule_rcp(*w.graph, assignment, procs, params);
  const rt::RunPlan plan = rt::build_run_plan(*w.graph, schedule);
  const auto liveness = sched::analyze_liveness(*w.graph, schedule);
  const std::int64_t tot = liveness.tot_mem();
  const std::int64_t min = liveness.min_mem();
  const std::int64_t s1_per_p =
      w.graph->sequential_space() / std::max(procs, 1);

  obs::TraceConfig tcfg;
  tcfg.events_per_proc =
      static_cast<std::int32_t>(flags.get_int("events"));

  // First-fit fragmentation and alignment put the practical floor above
  // MIN_MEM; escalate the fraction until the run executes (same policy as
  // bench_executor).
  std::unique_ptr<obs::Trace> trace;
  rt::RunReport report;
  std::int64_t capacity = 0;
  for (double frac = flags.get_double("frac");; frac += 0.1) {
    capacity = std::max(min + min / 8,
                        static_cast<std::int64_t>(
                            frac * static_cast<double>(tot)));
    trace = std::make_unique<obs::Trace>(procs, tcfg);
    rt::RunConfig config;
    config.params = params;
    config.capacity_per_proc = capacity;
    if (threaded) {
      rt::ThreadedOptions options;
      options.trace = trace.get();
      rt::ThreadedExecutor exec(
          plan, config,
          w.cholesky ? w.cholesky->make_init() : w.lu->make_init(),
          w.cholesky ? w.cholesky->make_body() : w.lu->make_body(), options);
      report = exec.run();
    } else {
      report = rt::simulate(plan, config, trace.get());
    }
    if (report.executable) break;
    RAPID_CHECK(frac < 1.5, cat("run never became executable: ",
                                report.failure));
  }

  const obs::OccupancyProfile occ = obs::build_occupancy(*trace);
  const std::vector<std::string> findings = check_trace(*trace, occ, report);

  obs::TraceLabels labels;
  for (graph::TaskId t = 0; t < w.graph->num_tasks(); ++t) {
    labels.tasks.push_back(w.graph->task(t).name);
  }
  for (graph::DataId d = 0; d < w.graph->num_data(); ++d) {
    labels.objects.push_back(w.graph->data(d).name);
  }
  const std::string prefix = flags.get("out");
  write_file(prefix + ".trace.json",
             obs::chrome_trace(*trace, labels).dump());
  write_file(prefix + ".occupancy.csv", obs::occupancy_csv(occ));

  const obs::MetricsSummary& m = *report.metrics;
  std::printf(
      "rapid_trace: %s on %d procs (%s executor), %lld tasks, "
      "%.2f ms %s time\n",
      w.name.c_str(), procs, executor.c_str(),
      static_cast<long long>(report.tasks_executed),
      report.parallel_time_us / 1000.0, threaded ? "wall" : "modeled");
  std::printf(
      "capacity %lld bytes/proc (MIN_MEM %lld, TOT %lld, S1/p %lld)\n",
      static_cast<long long>(capacity), static_cast<long long>(min),
      static_cast<long long>(tot), static_cast<long long>(s1_per_p));

  TextTable table({"proc", "maps", "high-water", "cap%", "S1/p x", "events",
                   "dropped"});
  for (int q = 0; q < procs; ++q) {
    const std::int64_t hw = occ.high_water[static_cast<std::size_t>(q)];
    table.add_row(
        {std::to_string(q),
         std::to_string(report.maps_per_proc[static_cast<std::size_t>(q)]),
         std::to_string(hw),
         fixed(100.0 * static_cast<double>(hw) /
                   static_cast<double>(capacity),
               1),
         fixed(static_cast<double>(hw) /
                   static_cast<double>(std::max<std::int64_t>(s1_per_p, 1)),
               2),
         std::to_string(trace->recorded(q)),
         std::to_string(trace->dropped(q))});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nstate residency (summed across procs, ms):");
  for (std::size_t s = 0;
       s < static_cast<std::size_t>(obs::ProtoState::kCount); ++s) {
    std::printf(" %s %.2f",
                obs::to_string(static_cast<obs::ProtoState>(s)),
                m.state_residency_us[s] / 1000.0);
  }
  std::printf(
      "\nwaits: %lld (p50 %lld us, p99 %lld us)  puts: %lld (p50 %lld B)  "
      "map intervals: %lld (p50 %lld us)\n",
      static_cast<long long>(m.wait_us.count()),
      static_cast<long long>(m.wait_us.percentile(0.5)),
      static_cast<long long>(m.wait_us.percentile(0.99)),
      static_cast<long long>(m.put_bytes.count()),
      static_cast<long long>(m.put_bytes.percentile(0.5)),
      static_cast<long long>(m.map_interval_us.count()),
      static_cast<long long>(m.map_interval_us.percentile(0.5)));
  std::printf("wrote %s.trace.json and %s.occupancy.csv\n", prefix.c_str(),
              prefix.c_str());
  if (!findings.empty()) {
    for (const std::string& f : findings) {
      std::fprintf(stderr, "rapid_trace finding: %s\n", f.c_str());
    }
    return kExitFindings;
  }
  return kExitOk;
  } catch (const rapid::Error& e) {
    std::fprintf(stderr, "rapid_trace: %s\n", e.what());
    return kExitInfraError;
  }
}
