#include "rapid/obs/telemetry.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "rapid/support/check.hpp"
#include "rapid/support/log.hpp"

namespace rapid::obs {

namespace {

std::int64_t wall_clock_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string format_double(double v) {
  // Integral values print without a fraction so counters stay exact and
  // diffs stay clean; everything else gets enough digits to round-trip.
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string label_block(const std::vector<Label>& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ",";
    first = false;
    out += l.first;
    out += "=\"";
    out += escape_label_value(l.second);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Labels for a histogram bucket line: existing labels + le.
std::string bucket_label_block(const std::vector<Label>& labels,
                               const std::string& le) {
  std::vector<Label> with_le = labels;
  with_le.emplace_back("le", le);
  return label_block(with_le);
}

}  // namespace

const char* to_string(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::int64_t SeriesSnapshot::hist_percentile(double q) const {
  const std::int64_t total = hist_count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  std::int64_t seen = 0;
  for (int i = 0; i < AtomicHistogram::kNumBuckets; ++i) {
    seen += buckets[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) >= target) {
      return Histogram::bucket_upper(i);
    }
  }
  return Histogram::bucket_upper(AtomicHistogram::kNumBuckets - 1);
}

JsonValue MetricsSnapshot::to_json() const {
  JsonValue doc = JsonValue::object();
  doc["schema"] = "rapid.telemetry.v1";
  doc["wall_ns"] = wall_ns;
  JsonValue arr = JsonValue::array();
  for (const SeriesSnapshot& s : series) {
    JsonValue m = JsonValue::object();
    m["name"] = s.name;
    m["type"] = to_string(s.type);
    if (!s.labels.empty()) {
      JsonValue labels = JsonValue::object();
      for (const Label& l : s.labels) labels[l.first] = l.second;
      m["labels"] = std::move(labels);
    }
    switch (s.type) {
      case MetricType::kCounter:
        m["value"] = s.int_value;
        break;
      case MetricType::kGauge:
        m["value"] = s.value;
        break;
      case MetricType::kHistogram: {
        m["count"] = s.hist_count();
        m["sum"] = s.hist_sum;
        m["p50"] = s.hist_percentile(0.50);
        m["p99"] = s.hist_percentile(0.99);
        JsonValue buckets = JsonValue::array();
        // Sparse: only non-empty buckets, as [le, count] pairs.
        for (int i = 0; i < AtomicHistogram::kNumBuckets; ++i) {
          const std::int64_t n = s.buckets[static_cast<std::size_t>(i)];
          if (n == 0) continue;
          JsonValue pair = JsonValue::array();
          pair.push_back(Histogram::bucket_upper(i));
          pair.push_back(n);
          buckets.push_back(std::move(pair));
        }
        m["buckets"] = std::move(buckets);
        break;
      }
    }
    arr.push_back(std::move(m));
  }
  doc["metrics"] = std::move(arr);
  return doc;
}

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  std::string last_family;
  for (const SeriesSnapshot& s : snap.series) {
    // Series are grouped by family at snapshot time; emit HELP/TYPE once
    // per family.
    if (s.name != last_family) {
      out += "# HELP " + s.name + " " + s.help + "\n";
      out += "# TYPE " + s.name + " ";
      out += to_string(s.type);
      out += "\n";
      last_family = s.name;
    }
    switch (s.type) {
      case MetricType::kCounter:
        out += s.name + label_block(s.labels) + " " +
               std::to_string(s.int_value) + "\n";
        break;
      case MetricType::kGauge:
        out += s.name + label_block(s.labels) + " " +
               format_double(s.value) + "\n";
        break;
      case MetricType::kHistogram: {
        // Cumulative buckets. Emit the finite buckets up to the highest
        // non-empty one so output stays compact, then +Inf. Deriving the
        // cumulative counts from per-bucket counts keeps them monotone by
        // construction.
        int highest = -1;
        for (int i = 0; i < AtomicHistogram::kNumBuckets; ++i) {
          if (s.buckets[static_cast<std::size_t>(i)] != 0) highest = i;
        }
        std::int64_t cumulative = 0;
        for (int i = 0; i <= highest && i < AtomicHistogram::kNumBuckets - 1;
             ++i) {
          cumulative += s.buckets[static_cast<std::size_t>(i)];
          out += s.name + "_bucket" +
                 bucket_label_block(
                     s.labels, std::to_string(Histogram::bucket_upper(i))) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += s.name + "_bucket" + bucket_label_block(s.labels, "+Inf") +
               " " + std::to_string(s.hist_count()) + "\n";
        out += s.name + "_sum" + label_block(s.labels) + " " +
               std::to_string(s.hist_sum) + "\n";
        out += s.name + "_count" + label_block(s.labels) + " " +
               std::to_string(s.hist_count()) + "\n";
        break;
      }
    }
  }
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_add(
    const std::string& name, const std::string& help, MetricType type,
    std::vector<Label> labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Entry>& e : entries_) {
    if (e->name == name && e->labels == labels) {
      RAPID_CHECK(e->type == type, "telemetry: metric '" + name +
                                       "' re-registered as a different type");
      return *e;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->type = type;
  entry->labels = std::move(labels);
  switch (type) {
    case MetricType::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry->histogram = std::make_unique<AtomicHistogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  std::vector<Label> labels) {
  return *find_or_add(name, help, MetricType::kCounter, std::move(labels))
              .counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help,
                              std::vector<Label> labels) {
  return *find_or_add(name, help, MetricType::kGauge, std::move(labels))
              .gauge;
}

AtomicHistogram& MetricsRegistry::histogram(const std::string& name,
                                            const std::string& help,
                                            std::vector<Label> labels) {
  return *find_or_add(name, help, MetricType::kHistogram, std::move(labels))
              .histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.wall_ns = wall_clock_ns();
  std::lock_guard<std::mutex> lock(mu_);
  snap.series.reserve(entries_.size());
  // Group series of the same family (name) together so the exposition
  // writer can emit HELP/TYPE once per family, preserving first-seen
  // family order.
  std::vector<const Entry*> ordered;
  ordered.reserve(entries_.size());
  for (const std::unique_ptr<Entry>& e : entries_) {
    if (std::find_if(ordered.begin(), ordered.end(), [&](const Entry* o) {
          return o->name == e->name;
        }) != ordered.end()) {
      continue;  // family already placed; series added below
    }
    for (const std::unique_ptr<Entry>& f : entries_) {
      if (f->name == e->name) ordered.push_back(f.get());
    }
  }
  for (const Entry* e : ordered) {
    SeriesSnapshot s;
    s.name = e->name;
    s.help = e->help;
    s.type = e->type;
    s.labels = e->labels;
    switch (e->type) {
      case MetricType::kCounter:
        s.int_value = e->counter->value();
        s.value = static_cast<double>(s.int_value);
        break;
      case MetricType::kGauge:
        s.value = e->gauge->value();
        break;
      case MetricType::kHistogram:
        for (int i = 0; i < AtomicHistogram::kNumBuckets; ++i) {
          s.buckets[static_cast<std::size_t>(i)] = e->histogram->bucket(i);
        }
        s.hist_sum = e->histogram->sum();
        break;
    }
    snap.series.push_back(std::move(s));
  }
  return snap;
}

bool atomic_write_file(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      text.empty() ||
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

TelemetrySampler::TelemetrySampler(MetricsRegistry& registry,
                                   TelemetrySamplerOptions opts)
    : registry_(registry), opts_(std::move(opts)) {
  if (opts_.interval_ms < 10) opts_.interval_ms = 10;
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::add_probe(
    std::function<void(MetricsRegistry&)> probe) {
  probes_.push_back(std::move(probe));
}

void TelemetrySampler::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { run_loop(); });
}

void TelemetrySampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
  // Final tick so the written snapshot reflects the end state.
  tick();
}

bool TelemetrySampler::tick() {
  if (disabled_.load(std::memory_order_relaxed)) return false;
  for (const auto& probe : probes_) probe(registry_);
  const MetricsSnapshot snap = registry_.snapshot();
  if (!write_snapshot(snap)) {
    disabled_.store(true, std::memory_order_relaxed);
    RAPID_WARN("telemetry: snapshot write to '"
               << opts_.path << "' failed (" << std::strerror(errno)
               << "); sampler disabled, service continues");
    return false;
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TelemetrySampler::run_loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(opts_.interval_ms),
                   [this] { return stopping_; });
      if (stopping_) return;
    }
    if (!tick()) return;  // write failure: degrade quietly
  }
}

bool TelemetrySampler::write_snapshot(const MetricsSnapshot& snap) {
  if (opts_.path.empty()) return true;  // in-memory-only sampler (tests)
  if (!atomic_write_file(opts_.path, prometheus_text(snap))) return false;
  if (opts_.write_json &&
      !atomic_write_file(opts_.path + ".json", snap.to_json().dump())) {
    return false;
  }
  return true;
}

}  // namespace rapid::obs
