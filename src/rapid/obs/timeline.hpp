// Per-processor memory-occupancy timelines reconstructed from the trace's
// heap events — the paper's occupancy-vs-S1/p profiles (Table 1, Fig. 7)
// as time series instead of end-of-run ratios.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rapid/obs/trace.hpp"

namespace rapid::obs {

struct OccupancySample {
  std::int64_t t_ns = 0;
  std::int64_t bytes = 0;  // arena in-use at t_ns
};

struct OccupancyProfile {
  /// One series per processor, time-ordered kHeapSample points.
  std::vector<std::vector<OccupancySample>> per_proc;
  /// Exact arena high-water per processor: max over kHeapPeak and
  /// kHeapSample events. Includes tentative MAP allocations rolled back
  /// inside perform_map, so it equals ProcMemory::peak_bytes() exactly.
  std::vector<std::int64_t> high_water;
};

OccupancyProfile build_occupancy(const Trace& trace);

/// CSV with header "proc,t_ns,bytes", one row per sample.
std::string occupancy_csv(const OccupancyProfile& profile);

}  // namespace rapid::obs
