// Per-processor ring-buffer event tracer — the repo's observability
// substrate. One fixed-size ring per processor, written only by that
// processor's worker thread (single writer, no locks, no allocation on the
// hot path) and read only after the run joins its threads, so the
// thread::join() happens-before edge is the only synchronization needed.
// When tracing is disabled the whole record path is one predictable branch.
//
// Event vocabulary follows the paper's execution model: the five protocol
// states REC/EXE/SND/MAP/END (Fig. 3(b)), content puts and their
// publication, address packages, MAP alloc/free with byte deltas, NACK /
// resend recovery traffic, and park/wake scheduling events. The heap
// samples (kHeapSample = arena in-use after each MAP, kHeapPeak = arena
// peak including tentative allocations rolled back inside perform_map)
// reconstruct the paper's per-processor occupancy-vs-S1/p profiles
// (Table 1 / Fig. 7) without asking the arena anything at run end.
#pragma once

#include <cstdint>
#include <vector>

#include "rapid/support/stopwatch.hpp"

namespace rapid::obs {

/// The paper's five protocol states (Fig. 3(b)). Distinct from
/// rt::ProcState, which tracks executor-internal scheduling phases.
enum class ProtoState : std::uint8_t {
  kRec = 0,
  kExe = 1,
  kSnd = 2,
  kMap = 3,
  kEnd = 4,
  kCount = 5,
};

const char* to_string(ProtoState s);

/// The 16-bit `d` stamp (TraceEvent::d) carries the put-sequence plane for
/// the conformance checker (verify/conformance.hpp): kPut / kPutPublish /
/// kResend stamp the owner's 1-based per-(object, reader) put sequence,
/// kConsume stamps the sequence the reader's acquire load observed when the
/// gated task became ready, and kNack stamps the sequence the waiter had
/// examined (the request's observed_seq). Stamps are truncated modulo 2^16;
/// 0 means "no sequence observed yet".
enum class EventKind : std::uint8_t {
  kStateEnter = 0,   // a = ProtoState entered
  kTaskBegin = 1,    // a = task id
  kTaskEnd = 2,      // a = task id
  kPut = 3,          // a = object, b = version, c = dest, bytes = size, d = seq
  kPutPublish = 4,   // a = object, b = version, c = dest, bytes = size, d = seq
  kConsume = 5,      // a = object, b = version, c = owner, d = seq (reader)
  kFlagSend = 6,     // a = task, c = dest
  kAddrPkgSend = 7,  // a = entries, b = seq, c = dest
  kAddrPkgInstall = 8,  // a = entries, b = seq, c = reader (receiver side)
  kMapBegin = 9,     // a = schedule position
  kMapAlloc = 10,    // a = object, bytes = object size
  kMapFree = 11,     // a = object, bytes = object size
  kMapEnd = 12,      // a = schedule position
  kHeapSample = 13,  // bytes = arena in-use
  kHeapPeak = 14,    // bytes = arena peak in-use (monotone)
  kNack = 15,        // a = object (or -1 for flag), b = version/task,
                     // c = owner, d = examined seq (content re-requests)
  kResend = 16,      // a = object, b = version, c = dest, bytes = size, d = seq
  kPark = 17,        // a = parks during this wait (blocked-wait park count)
  kCount = 18,
};

const char* to_string(EventKind k);

/// 32-byte binary record. t_ns is relative to the Trace's construction so
/// Chrome-trace timestamps start near zero.
struct TraceEvent {
  std::int64_t t_ns = 0;
  std::int64_t bytes = 0;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  EventKind kind = EventKind::kStateEnter;
  std::uint8_t pad_ = 0;
  /// Put-sequence stamp (see the EventKind table); 0 = none.
  std::uint16_t d = 0;
};

static_assert(sizeof(TraceEvent) == 32, "trace records are 32-byte packed");

struct TraceConfig {
  bool enabled = true;
  /// Ring capacity per processor, rounded up to a power of two. When a
  /// ring overflows the oldest events are overwritten and dropped() grows;
  /// exporters handle the truncated prefix gracefully.
  std::int32_t events_per_proc = 1 << 16;
};

class Trace {
 public:
  Trace(int num_procs, TraceConfig config = {});

  bool enabled() const { return enabled_; }
  int num_procs() const { return static_cast<int>(rings_.size()); }
  std::int64_t epoch_ns() const { return epoch_ns_; }

  /// Owning run id (RunReport::run_id), tagged by the executor before any
  /// worker starts so exporters can attribute every ring record to its
  /// run. 0 = untagged (single-run tools). Multi-tenant service runs each
  /// get their own Trace; the tag is what keeps merged Chrome traces
  /// separable per run.
  void set_run_id(std::int64_t run_id) { run_id_ = run_id; }
  std::int64_t run_id() const { return run_id_; }

  /// Hot path: append one event stamped with the calibrated TSC clock
  /// (now_ns() where no TSC is available). Only the worker thread that owns
  /// `proc` may call this during a run.
  void record(int proc, EventKind kind, std::int32_t a = 0,
              std::int32_t b = 0, std::int32_t c = 0,
              std::int64_t bytes = 0, std::uint16_t d = 0) {
    if (!enabled_) return;
#ifdef RAPID_TSC_CLOCK
    std::int64_t t = static_cast<std::int64_t>(
        static_cast<double>(__rdtsc() - epoch_tsc_) * ns_per_tick_);
    if (t < 0) t = 0;  // cross-core TSC skew can nudge early events negative
#else
    const std::int64_t t = now_ns() - epoch_ns_;
#endif
    record_at(proc, t, kind, a, b, c, bytes, d);
  }

  /// Append with an explicit (already epoch-relative) timestamp. The
  /// simulator uses this with modeled time.
  void record_at(int proc, std::int64_t t_ns, EventKind kind,
                 std::int32_t a = 0, std::int32_t b = 0, std::int32_t c = 0,
                 std::int64_t bytes = 0, std::uint16_t d = 0) {
    if (!enabled_) return;
    Ring& ring = rings_[static_cast<std::size_t>(proc)];
    TraceEvent& e =
        ring.buf[static_cast<std::size_t>(ring.count) & ring.mask];
    e.t_ns = t_ns;
    e.bytes = bytes;
    e.a = a;
    e.b = b;
    e.c = c;
    e.kind = kind;
    e.d = d;
    ++ring.count;
  }

  /// Events for one processor, oldest first (post-run only).
  std::vector<TraceEvent> events(int proc) const;

  /// Events recorded for `proc` in total (including overwritten ones).
  std::int64_t recorded(int proc) const {
    return rings_[static_cast<std::size_t>(proc)].count;
  }

  /// Events lost to ring overflow for `proc`.
  std::int64_t dropped(int proc) const;

  std::int64_t total_events() const;
  std::int64_t total_dropped() const;

 private:
  struct alignas(64) Ring {
    std::vector<TraceEvent> buf;
    std::uint64_t mask = 0;
    std::int64_t count = 0;
  };

  bool enabled_;
  std::int64_t epoch_ns_;
  std::int64_t run_id_ = 0;
#ifdef RAPID_TSC_CLOCK
  std::uint64_t epoch_tsc_ = 0;
  double ns_per_tick_ = 0.0;
#endif
  std::vector<Ring> rings_;
};

}  // namespace rapid::obs
