// Chrome trace_event JSON exporter. The produced file loads in Perfetto or
// chrome://tracing: one track per processor carrying protocol-state spans
// and task spans, a per-processor heap counter track, instants for MAP
// alloc/free and recovery traffic, and flow arrows from each content put's
// publication to its consumption on the reader.
#pragma once

#include <string>
#include <vector>

#include "rapid/obs/trace.hpp"
#include "rapid/support/json.hpp"

namespace rapid::obs {

/// Optional display names; indices are TaskId / DataId. Missing or short
/// vectors fall back to "task<i>" / "obj<i>".
struct TraceLabels {
  std::vector<std::string> tasks;
  std::vector<std::string> objects;
};

/// Build the full trace_event document ({"traceEvents": [...], ...}).
JsonValue chrome_trace(const Trace& trace, const TraceLabels& labels = {});

}  // namespace rapid::obs
