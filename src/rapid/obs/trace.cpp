#include "rapid/obs/trace.hpp"

#include <algorithm>

#include "rapid/support/check.hpp"

namespace rapid::obs {

const char* to_string(ProtoState s) {
  switch (s) {
    case ProtoState::kRec:
      return "REC";
    case ProtoState::kExe:
      return "EXE";
    case ProtoState::kSnd:
      return "SND";
    case ProtoState::kMap:
      return "MAP";
    case ProtoState::kEnd:
      return "END";
    case ProtoState::kCount:
      break;
  }
  return "?";
}

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kStateEnter:
      return "state_enter";
    case EventKind::kTaskBegin:
      return "task_begin";
    case EventKind::kTaskEnd:
      return "task_end";
    case EventKind::kPut:
      return "put";
    case EventKind::kPutPublish:
      return "put_publish";
    case EventKind::kConsume:
      return "consume";
    case EventKind::kFlagSend:
      return "flag_send";
    case EventKind::kAddrPkgSend:
      return "addr_pkg_send";
    case EventKind::kAddrPkgInstall:
      return "addr_pkg_install";
    case EventKind::kMapBegin:
      return "map_begin";
    case EventKind::kMapAlloc:
      return "map_alloc";
    case EventKind::kMapFree:
      return "map_free";
    case EventKind::kMapEnd:
      return "map_end";
    case EventKind::kHeapSample:
      return "heap_sample";
    case EventKind::kHeapPeak:
      return "heap_peak";
    case EventKind::kNack:
      return "nack";
    case EventKind::kResend:
      return "resend";
    case EventKind::kPark:
      return "park";
    case EventKind::kCount:
      break;
  }
  return "?";
}

namespace {
std::uint64_t round_up_pow2(std::int64_t n) {
  std::uint64_t cap = 1;
  while (cap < static_cast<std::uint64_t>(n)) cap <<= 1;
  return cap;
}
}  // namespace

Trace::Trace(int num_procs, TraceConfig config)
    : enabled_(config.enabled), epoch_ns_(now_ns()) {
  RAPID_CHECK(num_procs > 0, "trace needs at least one processor");
  rings_.resize(static_cast<std::size_t>(num_procs));
  if (!enabled_) return;
#ifdef RAPID_TSC_CLOCK
  // Calibrate here (first Trace in the process pays ~200us) so record()
  // never touches the magic-static guard on the hot path.
  ns_per_tick_ = detail::tsc_calibration().ns_per_tick;
  epoch_tsc_ = __rdtsc();
#endif
  const std::uint64_t cap =
      round_up_pow2(std::max<std::int32_t>(config.events_per_proc, 64));
  for (Ring& ring : rings_) {
    ring.buf.resize(cap);
    ring.mask = cap - 1;
  }
}

std::vector<TraceEvent> Trace::events(int proc) const {
  const Ring& ring = rings_[static_cast<std::size_t>(proc)];
  std::vector<TraceEvent> out;
  if (ring.buf.empty() || ring.count == 0) return out;
  const std::int64_t cap = static_cast<std::int64_t>(ring.buf.size());
  const std::int64_t n = std::min(ring.count, cap);
  out.reserve(static_cast<std::size_t>(n));
  // Oldest surviving record sits at count - n (mod cap).
  for (std::int64_t i = ring.count - n; i < ring.count; ++i) {
    out.push_back(ring.buf[static_cast<std::size_t>(i) & ring.mask]);
  }
  return out;
}

std::int64_t Trace::dropped(int proc) const {
  const Ring& ring = rings_[static_cast<std::size_t>(proc)];
  if (ring.buf.empty()) return 0;
  const std::int64_t cap = static_cast<std::int64_t>(ring.buf.size());
  return ring.count > cap ? ring.count - cap : 0;
}

std::int64_t Trace::total_events() const {
  std::int64_t total = 0;
  for (int q = 0; q < num_procs(); ++q) total += recorded(q);
  return total;
}

std::int64_t Trace::total_dropped() const {
  std::int64_t total = 0;
  for (int q = 0; q < num_procs(); ++q) total += dropped(q);
  return total;
}

}  // namespace rapid::obs
