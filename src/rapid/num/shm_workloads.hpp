// Spec-string workloads for the cross-process shm transport. A spawned
// rapid_shm_worker process shares no address space with the coordinator, so
// it cannot inherit the plan or the task-body closures; instead the
// coordinator writes a short spec string into the segment header and the
// worker rebuilds the *identical* workload from it — same matrix generator,
// same ordering, same scheduler — then cross-checks rt::plan_fingerprint
// against the coordinator's before touching any shared state.
//
// Grammar (key=value pairs after the app name, any order, all optional):
//   cholesky:grid=12,block=4,procs=4,sched=rcp|dts|mpo
//   lu:grid=12,block=4,procs=4
//   grid:rows=8,cols=8,procs=4,delay=0,sched=mpo
// Everything in the pipeline is deterministic (no seeds, no wall-clock;
// grid's optional per-task delay draws from a stateless hash of the task
// id), so spec equality implies plan equality across processes and
// machines. The runtime service reuses these specs as its RunRequest plan
// language — grid is its exact-integer workload (residual is a bit-exact
// max-abs-diff, not a floating-point factorization residual).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "rapid/num/cholesky_app.hpp"
#include "rapid/num/grid_app.hpp"
#include "rapid/num/lu_app.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/schedule.hpp"

namespace rapid::num {

/// A workload rebuilt from a spec string: the app (graph + task bodies),
/// its schedule and run plan, and the liveness floor. The app object owns
/// the graph the plan points into, so keep the ShmWorkload alive for the
/// whole run.
struct ShmWorkload {
  std::string spec;
  std::unique_ptr<CholeskyApp> cholesky;  // exactly one of these is set
  std::unique_ptr<LuApp> lu;
  std::unique_ptr<GridIntApp> grid;
  sched::Schedule schedule;
  rt::RunPlan plan;
  std::int64_t min_mem = 0;
  /// Sum of all live footprints (always executable, even with the threaded
  /// executor's 8-byte alignment padding on top of Def. 5 accounting).
  std::int64_t tot_mem = 0;

  const graph::TaskGraph& graph() const {
    if (cholesky) return cholesky->graph();
    if (lu) return lu->graph();
    return grid->graph();
  }
  rt::ObjectInit make_init() const {
    if (cholesky) return cholesky->make_init();
    if (lu) return lu->make_init();
    return grid->make_init();
  }
  rt::TaskBody make_body() const {
    if (cholesky) return cholesky->make_body();
    if (lu) return lu->make_body();
    return grid->make_body();
  }
  /// Relative factorization residual against the generated matrix (cholesky
  /// and lu), assembled from the owner heaps after a successful run. For
  /// the grid app this is the largest |final - expected| over all objects —
  /// integer arithmetic, so anything other than exactly 0.0 is a protocol
  /// bug, not roundoff.
  double residual(const rt::ThreadedExecutor& exec) const;
};

/// Parses and builds; throws rapid::Error on an unknown app name or a
/// malformed key=value list.
std::unique_ptr<ShmWorkload> build_shm_workload(const std::string& spec);

}  // namespace rapid::num
