#include "rapid/num/nbody_app.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::num {

namespace {
constexpr std::int64_t kSummaryBytes = 3 * 8;  // mass, Σx, Σy
}

NBodyApp NBodyApp::build(const NBodyConfig& config, int num_procs) {
  RAPID_CHECK(config.width > 0 && config.height > 0, "empty grid");
  RAPID_CHECK(config.particles_per_cell > 0, "no particles");
  RAPID_CHECK(config.timesteps > 0, "no timesteps");
  RAPID_CHECK(num_procs > 0, "num_procs must be positive");
  NBodyApp app;
  app.config_ = config;
  const std::int32_t cells = app.num_cells();
  const std::int64_t particle_bytes =
      static_cast<std::int64_t>(config.particles_per_cell) * 4 * 8;
  const std::int64_t force_bytes =
      static_cast<std::int64_t>(config.particles_per_cell) * 2 * 8;

  // Objects. Cells are distributed by row (cyclic over rows), so vertical
  // neighbors are remote — the paper's stencil-style volatile traffic.
  auto proc_of_row = [&](std::int32_t row) {
    return static_cast<graph::ProcId>(row % num_procs);
  };
  app.particles_.resize(cells);
  app.summaries_.resize(cells);
  app.forces_.resize(cells);
  for (std::int32_t y = 0; y < config.height; ++y) {
    for (std::int32_t x = 0; x < config.width; ++x) {
      const std::int32_t c = app.cell_of(x, y);
      app.particles_[c] = app.graph_.add_data(cat("part[", x, ",", y, "]"),
                                              particle_bytes, proc_of_row(y));
      app.summaries_[c] = app.graph_.add_data(cat("summ[", x, ",", y, "]"),
                                              kSummaryBytes, proc_of_row(y));
      app.forces_[c] = app.graph_.add_data(cat("forc[", x, ",", y, "]"),
                                           force_bytes, proc_of_row(y));
    }
  }
  app.rowsums_.resize(config.height);
  for (std::int32_t r = 0; r < config.height; ++r) {
    app.rowsums_[r] = app.graph_.add_data(cat("rsum[", r, "]"), kSummaryBytes,
                                          proc_of_row(r));
  }
  app.global_ = app.graph_.add_data("glob", kSummaryBytes, 0);

  // 3x3 neighborhoods (clamped at the borders), sorted for determinism.
  app.neighbors_.resize(cells);
  for (std::int32_t y = 0; y < config.height; ++y) {
    for (std::int32_t x = 0; x < config.width; ++x) {
      auto& list = app.neighbors_[app.cell_of(x, y)];
      for (std::int32_t dy = -1; dy <= 1; ++dy) {
        for (std::int32_t dx = -1; dx <= 1; ++dx) {
          const std::int32_t nx = x + dx, ny = y + dy;
          if (nx < 0 || nx >= config.width || ny < 0 || ny >= config.height) {
            continue;
          }
          list.push_back(app.cell_of(nx, ny));
        }
      }
      std::sort(list.begin(), list.end());
    }
  }

  // Unrolled timesteps.
  for (std::int32_t step = 0; step < config.timesteps; ++step) {
    for (std::int32_t c = 0; c < cells; ++c) {
      app.graph_.add_task(cat("SUM(", c, ")s", step), {app.particles_[c]},
                          {app.summaries_[c]},
                          4.0 * config.particles_per_cell);
      app.task_info_.push_back(TaskInfo{TaskInfo::Kind::kSummary, c,
                                        c / config.width, step});
    }
    for (std::int32_t r = 0; r < config.height; ++r) {
      app.graph_.add_task(cat("ZROW(", r, ")s", step), {}, {app.rowsums_[r]},
                          1.0);
      app.task_info_.push_back(TaskInfo{TaskInfo::Kind::kZeroRow, -1, r,
                                        step});
      for (std::int32_t x = 0; x < config.width; ++x) {
        const std::int32_t c = app.cell_of(x, r);
        app.graph_.add_task(cat("RACC(", c, ")s", step),
                            {app.summaries_[c], app.rowsums_[r]},
                            {app.rowsums_[r]}, 3.0,
                            /*commute_group=*/app.rowsums_[r]);
        app.task_info_.push_back(TaskInfo{TaskInfo::Kind::kRowAccumulate, c,
                                          r, step});
      }
    }
    app.graph_.add_task(cat("ZGLB s", step), {}, {app.global_}, 1.0);
    app.task_info_.push_back(TaskInfo{TaskInfo::Kind::kZeroGlobal, -1, -1,
                                      step});
    for (std::int32_t r = 0; r < config.height; ++r) {
      app.graph_.add_task(cat("GACC(", r, ")s", step),
                          {app.rowsums_[r], app.global_}, {app.global_}, 3.0,
                          /*commute_group=*/app.global_);
      app.task_info_.push_back(TaskInfo{TaskInfo::Kind::kGlobalAccumulate,
                                        -1, r, step});
    }
    for (std::int32_t c = 0; c < cells; ++c) {
      std::vector<graph::DataId> reads = {app.global_};
      for (std::int32_t nb : app.neighbors_[c]) {
        reads.push_back(app.particles_[nb]);
        reads.push_back(app.summaries_[nb]);
      }
      const double near =
          static_cast<double>(app.neighbors_[c].size()) *
          config.particles_per_cell;
      app.graph_.add_task(
          cat("FRC(", c, ")s", step), std::move(reads), {app.forces_[c]},
          10.0 * config.particles_per_cell * near);
      app.task_info_.push_back(TaskInfo{TaskInfo::Kind::kForce, c,
                                        c / config.width, step});
    }
    for (std::int32_t c = 0; c < cells; ++c) {
      app.graph_.add_task(cat("UPD(", c, ")s", step),
                          {app.forces_[c], app.particles_[c]},
                          {app.particles_[c]},
                          6.0 * config.particles_per_cell);
      app.task_info_.push_back(TaskInfo{TaskInfo::Kind::kUpdate, c,
                                        c / config.width, step});
    }
  }
  app.graph_.finalize();
  return app;
}

std::vector<double> NBodyApp::initial_particles() const {
  // Deterministic disk-ish initial condition: particles uniform in their
  // cell, small random velocities.
  Rng rng(config_.seed);
  const std::int32_t cells = num_cells();
  std::vector<double> state(
      static_cast<std::size_t>(cells) * config_.particles_per_cell * 4);
  std::size_t k = 0;
  for (std::int32_t y = 0; y < config_.height; ++y) {
    for (std::int32_t x = 0; x < config_.width; ++x) {
      for (std::int32_t p = 0; p < config_.particles_per_cell; ++p) {
        state[k++] = x + rng.next_double();         // x
        state[k++] = y + rng.next_double();         // y
        state[k++] = rng.next_double(-0.1, 0.1);    // vx
        state[k++] = rng.next_double(-0.1, 0.1);    // vy
      }
    }
  }
  return state;
}

void NBodyApp::do_summary(const double* particles, double* summary) const {
  double mass = 0.0, sx = 0.0, sy = 0.0;
  for (std::int32_t p = 0; p < config_.particles_per_cell; ++p) {
    mass += 1.0;
    sx += particles[p * 4 + 0];
    sy += particles[p * 4 + 1];
  }
  summary[0] = mass;
  summary[1] = sx;
  summary[2] = sy;
}

void NBodyApp::do_force(std::size_t self_index,
                        const double* const* near_particles,
                        const double* const* near_summaries,
                        std::size_t near_count, const double* global,
                        double* forces) const {
  const double eps2 = config_.softening * config_.softening;
  // Far field: global aggregate minus the near cells, as one point mass.
  double far_mass = global[0], far_sx = global[1], far_sy = global[2];
  for (std::size_t s = 0; s < near_count; ++s) {
    far_mass -= near_summaries[s][0];
    far_sx -= near_summaries[s][1];
    far_sy -= near_summaries[s][2];
  }
  const bool has_far = far_mass > 0.5;  // masses are integral
  const double far_cx = has_far ? far_sx / far_mass : 0.0;
  const double far_cy = has_far ? far_sy / far_mass : 0.0;
  const double* own = near_particles[self_index];
  for (std::int32_t p = 0; p < config_.particles_per_cell; ++p) {
    const double xi = own[p * 4 + 0];
    const double yi = own[p * 4 + 1];
    double fx = 0.0, fy = 0.0;
    for (std::size_t s = 0; s < near_count; ++s) {
      const double* src = near_particles[s];
      for (std::int32_t q = 0; q < config_.particles_per_cell; ++q) {
        const double dx = src[q * 4 + 0] - xi;
        const double dy = src[q * 4 + 1] - yi;
        const double r2 = dx * dx + dy * dy;
        if (s == self_index && q == p) continue;  // self pair
        const double denom = (r2 + eps2) * std::sqrt(r2 + eps2);
        fx += dx / denom;
        fy += dy / denom;
      }
    }
    if (has_far) {
      const double dx = far_cx - xi;
      const double dy = far_cy - yi;
      const double r2 = dx * dx + dy * dy;
      const double denom = (r2 + eps2) * std::sqrt(r2 + eps2);
      fx += far_mass * dx / denom;
      fy += far_mass * dy / denom;
    }
    forces[p * 2 + 0] = fx;
    forces[p * 2 + 1] = fy;
  }
}

void NBodyApp::do_update(const double* forces, double* particles) const {
  for (std::int32_t p = 0; p < config_.particles_per_cell; ++p) {
    particles[p * 4 + 2] += forces[p * 2 + 0] * config_.dt;
    particles[p * 4 + 3] += forces[p * 2 + 1] * config_.dt;
    particles[p * 4 + 0] += particles[p * 4 + 2] * config_.dt;
    particles[p * 4 + 1] += particles[p * 4 + 3] * config_.dt;
  }
}

rt::ObjectInit NBodyApp::make_init() const {
  const std::vector<double> state = initial_particles();
  return [this, state](graph::DataId d, std::span<std::byte> buffer) {
    std::memset(buffer.data(), 0, buffer.size());
    for (std::int32_t c = 0; c < num_cells(); ++c) {
      if (particles_[c] == d) {
        std::memcpy(buffer.data(),
                    state.data() +
                        static_cast<std::size_t>(c) *
                            config_.particles_per_cell * 4,
                    buffer.size());
        return;
      }
    }
    // Summaries, row sums, global and forces start zeroed.
  };
}

rt::TaskBody NBodyApp::make_body() const {
  return [this](graph::TaskId t, rt::ObjectResolver& resolver) {
    const TaskInfo& info = task_info_[t];
    auto dbl = [](std::span<const std::byte> s) {
      return reinterpret_cast<const double*>(s.data());
    };
    auto mut = [](std::span<std::byte> s) {
      return reinterpret_cast<double*>(s.data());
    };
    switch (info.kind) {
      case TaskInfo::Kind::kSummary: {
        do_summary(dbl(resolver.read(particles_[info.cell])),
                   mut(resolver.write(summaries_[info.cell])));
        break;
      }
      case TaskInfo::Kind::kZeroRow: {
        auto out = resolver.write(rowsums_[info.row]);
        std::memset(out.data(), 0, out.size());
        break;
      }
      case TaskInfo::Kind::kRowAccumulate: {
        const double* summary = dbl(resolver.read(summaries_[info.cell]));
        double* acc = mut(resolver.write(rowsums_[info.row]));
        for (int k = 0; k < 3; ++k) acc[k] += summary[k];
        break;
      }
      case TaskInfo::Kind::kZeroGlobal: {
        auto out = resolver.write(global_);
        std::memset(out.data(), 0, out.size());
        break;
      }
      case TaskInfo::Kind::kGlobalAccumulate: {
        const double* rowsum = dbl(resolver.read(rowsums_[info.row]));
        double* acc = mut(resolver.write(global_));
        for (int k = 0; k < 3; ++k) acc[k] += rowsum[k];
        break;
      }
      case TaskInfo::Kind::kForce: {
        const auto& nbrs = neighbors_[info.cell];
        std::vector<const double*> near_particles, near_summaries;
        std::size_t self_index = 0;
        for (std::size_t s = 0; s < nbrs.size(); ++s) {
          if (nbrs[s] == info.cell) self_index = s;
          near_particles.push_back(dbl(resolver.read(particles_[nbrs[s]])));
          near_summaries.push_back(dbl(resolver.read(summaries_[nbrs[s]])));
        }
        do_force(self_index, near_particles.data(), near_summaries.data(),
                 nbrs.size(), dbl(resolver.read(global_)),
                 mut(resolver.write(forces_[info.cell])));
        break;
      }
      case TaskInfo::Kind::kUpdate: {
        do_update(dbl(resolver.read(forces_[info.cell])),
                  mut(resolver.write(particles_[info.cell])));
        break;
      }
    }
  };
}

std::vector<double> NBodyApp::extract_particles(
    const rt::ThreadedExecutor& exec) const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(num_cells()) *
              config_.particles_per_cell * 4);
  for (std::int32_t c = 0; c < num_cells(); ++c) {
    const auto bytes = exec.read_object(particles_[c]);
    const auto* v = reinterpret_cast<const double*>(bytes.data());
    out.insert(out.end(), v,
               v + static_cast<std::size_t>(config_.particles_per_cell) * 4);
  }
  return out;
}

std::vector<double> NBodyApp::reference_run() const {
  const std::int32_t cells = num_cells();
  const std::size_t per_cell =
      static_cast<std::size_t>(config_.particles_per_cell) * 4;
  std::vector<double> particles = initial_particles();
  std::vector<double> summaries(static_cast<std::size_t>(cells) * 3, 0.0);
  std::vector<double> forces(
      static_cast<std::size_t>(cells) * config_.particles_per_cell * 2, 0.0);
  std::vector<double> rowsums(static_cast<std::size_t>(config_.height) * 3);
  double global[3];
  for (std::int32_t step = 0; step < config_.timesteps; ++step) {
    for (std::int32_t c = 0; c < cells; ++c) {
      do_summary(particles.data() + c * per_cell, summaries.data() + c * 3);
    }
    for (std::int32_t r = 0; r < config_.height; ++r) {
      double* acc = rowsums.data() + r * 3;
      acc[0] = acc[1] = acc[2] = 0.0;
      for (std::int32_t x = 0; x < config_.width; ++x) {
        const double* s = summaries.data() + cell_of(x, r) * 3;
        for (int k = 0; k < 3; ++k) acc[k] += s[k];
      }
    }
    global[0] = global[1] = global[2] = 0.0;
    for (std::int32_t r = 0; r < config_.height; ++r) {
      for (int k = 0; k < 3; ++k) global[k] += rowsums[r * 3 + k];
    }
    for (std::int32_t c = 0; c < cells; ++c) {
      const auto& nbrs = neighbors_[c];
      std::vector<const double*> near_particles, near_summaries;
      std::size_t self_index = 0;
      for (std::size_t s = 0; s < nbrs.size(); ++s) {
        if (nbrs[s] == c) self_index = s;
        near_particles.push_back(particles.data() + nbrs[s] * per_cell);
        near_summaries.push_back(summaries.data() + nbrs[s] * 3);
      }
      do_force(self_index, near_particles.data(), near_summaries.data(),
               nbrs.size(), global,
               forces.data() +
                   static_cast<std::size_t>(c) * config_.particles_per_cell *
                       2);
    }
    for (std::int32_t c = 0; c < cells; ++c) {
      do_update(forces.data() + static_cast<std::size_t>(c) *
                                    config_.particles_per_cell * 2,
                particles.data() + c * per_cell);
    }
  }
  return particles;
}

}  // namespace rapid::num
