// Reference sequential solvers and verification utilities. Tests compare
// the runtime-produced factors against these; the benches use them for the
// S1 sequential-space accounting only.
#pragma once

#include <cstdint>
#include <vector>

#include "rapid/sparse/csc.hpp"

namespace rapid::num {

/// Dense column-major n×n Cholesky; returns L (lower, ld = n). Input is a
/// dense column-major copy of an SPD matrix.
std::vector<double> dense_cholesky(std::vector<double> a, std::int64_t n);

/// Dense LU with partial pivoting: factors in place (L unit-lower, U upper)
/// and returns the pivot sequence (LAPACK getrf convention: at step j, rows
/// j and piv[j] were swapped).
struct DenseLu {
  std::vector<double> lu;  // packed L\U, column-major, ld = n
  std::vector<std::int32_t> piv;
};
DenseLu dense_lu(std::vector<double> a, std::int64_t n);

/// ‖A − L·Lᵀ‖_F / ‖A‖_F with dense L.
double cholesky_residual(const sparse::CscMatrix& a,
                         const std::vector<double>& l_dense);

/// ‖P·A − L·U‖_F / ‖A‖_F with a packed dense LU and pivot sequence.
double lu_residual(const sparse::CscMatrix& a, const std::vector<double>& lu,
                   const std::vector<std::int32_t>& piv);

/// Solves A x = b given dense L (Cholesky). Returns x.
std::vector<double> cholesky_solve(const std::vector<double>& l,
                                   std::int64_t n, std::vector<double> b);

/// Solves A x = b given packed dense LU + pivots. Returns x.
std::vector<double> lu_solve(const std::vector<double>& lu,
                             const std::vector<std::int32_t>& piv,
                             std::int64_t n, std::vector<double> b);

/// Max-norm relative error between two vectors.
double max_rel_error(const std::vector<double>& x,
                     const std::vector<double>& y);

}  // namespace rapid::num
