#include "rapid/num/grid_app.hpp"

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "rapid/support/check.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::num {

GridIntApp GridIntApp::build(int rows, int cols, int num_procs,
                             std::int64_t delay_us) {
  RAPID_CHECK(rows >= 1 && cols >= 1 && num_procs >= 1,
              "GridIntApp needs rows, cols, procs >= 1");
  GridIntApp app;
  app.rows_ = rows;
  app.cols_ = cols;
  app.delay_us_ = delay_us;
  app.objects_.reserve(static_cast<std::size_t>(rows) * cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      app.objects_.push_back(app.graph_.add_data(
          "g(" + std::to_string(i) + "," + std::to_string(j) + ")", 8,
          static_cast<graph::ProcId>((i * cols + j) % num_procs)));
    }
  }
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      const graph::DataId d = app.at(i, j);
      if (i == 0) {
        app.graph_.add_task("P" + std::to_string(j), {}, {d}, 1.0);
      } else {
        app.graph_.add_task(
            "S(" + std::to_string(i) + "," + std::to_string(j) + ")",
            {app.at(i - 1, j), app.at(i - 1, (j + 1) % cols)}, {d}, 1.0);
      }
      app.graph_.add_task(
          "D(" + std::to_string(i) + "," + std::to_string(j) + ")", {d}, {d},
          1.0);
    }
  }
  app.graph_.finalize();

  // Sequential interpretation in program order = the exactness oracle.
  app.expected_.assign(app.objects_.size(), 0);
  for (graph::TaskId t = 0; t < app.graph_.num_tasks(); ++t) {
    const graph::Task& task = app.graph_.task(t);
    const graph::DataId target = task.writes.front();
    if (task.reads.empty()) {
      app.expected_[target] = target + 7;
    } else if (task.reads.size() == 1) {
      app.expected_[target] *= 2;
    } else {
      app.expected_[target] =
          app.expected_[task.reads[0]] + app.expected_[task.reads[1]];
    }
  }
  return app;
}

rt::ObjectInit GridIntApp::make_init() const {
  return [](graph::DataId, std::span<std::byte> buf) {
    std::memset(buf.data(), 0, buf.size());
  };
}

rt::TaskBody GridIntApp::make_body() const {
  const std::int64_t delay_cap = delay_us_;
  return [this, delay_cap](graph::TaskId t, rt::ObjectResolver& resolver) {
    if (delay_cap > 0) {
      // Stateless per-task draw: interleavings vary wildly across tasks
      // while the schedule of sleeps stays reproducible.
      Rng rng(0x9E3779B9u ^ static_cast<std::uint64_t>(t));
      std::this_thread::sleep_for(std::chrono::microseconds(
          rng.next_int(0, delay_cap)));
    }
    const graph::Task& task = graph_.task(t);
    const graph::DataId target = task.writes.front();
    auto* tv = reinterpret_cast<std::int64_t*>(resolver.write(target).data());
    if (task.reads.empty()) {
      *tv = target + 7;
    } else if (task.reads.size() == 1) {
      *tv *= 2;
    } else {
      const auto a = resolver.read(task.reads[0]);
      const auto b = resolver.read(task.reads[1]);
      *tv = *reinterpret_cast<const std::int64_t*>(a.data()) +
            *reinterpret_cast<const std::int64_t*>(b.data());
    }
  };
}

std::int64_t GridIntApp::max_abs_error(
    const rt::ThreadedExecutor& exec) const {
  std::int64_t worst = 0;
  for (graph::DataId d = 0; d < graph_.num_data(); ++d) {
    const auto bytes = exec.read_object(d);
    std::int64_t v = 0;
    std::memcpy(&v, bytes.data(), sizeof(v));
    const std::int64_t diff = v > expected_[d] ? v - expected_[d]
                                               : expected_[d] - v;
    if (diff > worst) worst = diff;
  }
  return worst;
}

}  // namespace rapid::num
