#include "rapid/num/cholesky_app.hpp"

#include <cmath>
#include <cstring>

#include "rapid/num/kernels.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::num {

namespace {

std::int64_t block_key(Index bi, Index bj) {
  return (static_cast<std::int64_t>(bi) << 32) | static_cast<std::uint32_t>(bj);
}

/// Near-square processor grid: pr * pc == p with pr the largest divisor of
/// p that is <= sqrt(p).
std::pair<int, int> processor_grid(int p) {
  int pr = 1;
  for (int d = 1; d * d <= p; ++d) {
    if (p % d == 0) pr = d;
  }
  return {pr, p / pr};
}

}  // namespace

CholeskyApp CholeskyApp::build(sparse::CscMatrix a, Index block_size,
                               int num_procs) {
  RAPID_CHECK(a.n_rows() == a.n_cols(), "Cholesky needs a square matrix");
  RAPID_CHECK(num_procs > 0, "num_procs must be positive");
  CholeskyApp app;
  app.a_ = std::move(a);
  const Index n = app.a_.n_cols();
  app.layout_ = sparse::BlockLayout(n, block_size);
  const Index nb = app.layout_.num_blocks;

  const sparse::SymbolicFactor symbolic =
      sparse::symbolic_cholesky(app.a_.pattern);
  app.block_fill_ =
      sparse::project_to_blocks(symbolic.l_pattern, app.layout_, app.layout_);

  const auto [pr, pc] = processor_grid(num_procs);

  // Data objects: one per present lower-triangular block of the factor.
  for (Index bj = 0; bj < nb; ++bj) {
    for (Index k = app.block_fill_.col_ptr[bj];
         k < app.block_fill_.col_ptr[bj + 1]; ++k) {
      const Index bi = app.block_fill_.row_idx[k];
      RAPID_CHECK(bi >= bj, "factor block pattern must be lower triangular");
      const std::int64_t bytes =
          static_cast<std::int64_t>(app.layout_.block_width(bi)) *
          app.layout_.block_width(bj) * static_cast<std::int64_t>(sizeof(double));
      const graph::ProcId owner =
          static_cast<graph::ProcId>((bi % pr) * pc + (bj % pc));
      const graph::DataId d = app.graph_.add_data(
          cat("A[", bi, ",", bj, "]"), bytes, owner);
      app.object_of_block_.emplace(block_key(bi, bj), d);
      RAPID_CHECK(d == static_cast<graph::DataId>(app.block_of_object_.size()),
                  "object ids must be dense");
      app.block_of_object_.emplace_back(bi, bj);
    }
  }

  // Tasks in elimination order. Update tasks accumulating into the same
  // target block share a commute group (= the target's object id).
  auto obj = [&app](Index bi, Index bj) {
    const auto it = app.object_of_block_.find(block_key(bi, bj));
    return it == app.object_of_block_.end() ? graph::kInvalidData
                                            : it->second;
  };
  for (Index k = 0; k < nb; ++k) {
    const Index bk = app.layout_.block_width(k);
    const graph::DataId dkk = obj(k, k);
    RAPID_CHECK(dkk != graph::kInvalidData, "missing diagonal block");
    app.graph_.add_task(cat("POTRF(", k, ")"), {dkk}, {dkk},
                        flops_potrf(bk));
    app.task_info_.push_back(TaskInfo{TaskInfo::Kind::kPotrf, k, k, k});
    // Present sub-diagonal blocks of column k.
    std::vector<Index> below;
    for (Index e = app.block_fill_.col_ptr[k];
         e < app.block_fill_.col_ptr[k + 1]; ++e) {
      const Index bi = app.block_fill_.row_idx[e];
      if (bi > k) below.push_back(bi);
    }
    for (Index bi : below) {
      app.graph_.add_task(cat("TRSM(", bi, ",", k, ")"),
                          {dkk, obj(bi, k)}, {obj(bi, k)},
                          flops_trsm(app.layout_.block_width(bi), bk));
      app.task_info_.push_back(TaskInfo{TaskInfo::Kind::kTrsm, bi, k, k});
    }
    // Updates: target (i, j) with i >= j, both column-k blocks present.
    for (std::size_t x = 0; x < below.size(); ++x) {
      for (std::size_t y = x; y < below.size(); ++y) {
        const Index bj = below[x];
        const Index bi = below[y];
        const graph::DataId target = obj(bi, bj);
        if (target == graph::kInvalidData) continue;  // structurally zero
        std::vector<graph::DataId> reads = {obj(bi, k), obj(bj, k), target};
        app.graph_.add_task(
            cat("UPD(", bi, ",", bj, ",", k, ")"), std::move(reads), {target},
            flops_gemm(app.layout_.block_width(bi),
                       app.layout_.block_width(bj), bk),
            /*commute_group=*/target);
        app.task_info_.push_back(TaskInfo{TaskInfo::Kind::kUpdate, bi, bj, k});
      }
    }
  }
  app.graph_.finalize();
  return app;
}

graph::DataId CholeskyApp::block_object(Index bi, Index bj) const {
  const auto it = object_of_block_.find(block_key(bi, bj));
  return it == object_of_block_.end() ? graph::kInvalidData : it->second;
}

rt::ObjectInit CholeskyApp::make_init() const {
  return [this](graph::DataId d, std::span<std::byte> buffer) {
    // Block content = A's scalar values in the block's range, zero fill
    // elsewhere (dense storage keeps structurally-zero positions exact).
    const auto [bi, bj] = block_of_object_.at(static_cast<std::size_t>(d));
    const Index r0 = layout_.block_begin(bi);
    const Index c0 = layout_.block_begin(bj);
    const Index h = layout_.block_width(bi);
    const Index w = layout_.block_width(bj);
    auto* values = reinterpret_cast<double*>(buffer.data());
    std::memset(buffer.data(), 0, buffer.size());
    for (Index c = c0; c < c0 + w; ++c) {
      for (Index e = a_.pattern.col_ptr[c]; e < a_.pattern.col_ptr[c + 1];
           ++e) {
        const Index r = a_.pattern.row_idx[e];
        if (r >= r0 && r < r0 + h) {
          values[static_cast<std::size_t>(c - c0) * h + (r - r0)] =
              a_.values[e];
        }
      }
    }
  };
}

rt::TaskBody CholeskyApp::make_body() const {
  return [this](graph::TaskId t, rt::ObjectResolver& resolver) {
    const TaskInfo& info = task_info_[t];
    const Index hi = layout_.block_width(info.i);
    const Index hj = layout_.block_width(info.j);
    const Index hk = layout_.block_width(info.k);
    switch (info.kind) {
      case TaskInfo::Kind::kPotrf: {
        auto span = resolver.write(block_object(info.k, info.k));
        potrf_lower(reinterpret_cast<double*>(span.data()), hk, hk);
        break;
      }
      case TaskInfo::Kind::kTrsm: {
        auto lkk = resolver.read(block_object(info.k, info.k));
        auto aik = resolver.write(block_object(info.i, info.k));
        trsm_right_lower_transpose(
            reinterpret_cast<const double*>(lkk.data()), hk,
            reinterpret_cast<double*>(aik.data()), hi, hi, hk);
        break;
      }
      case TaskInfo::Kind::kUpdate: {
        auto lik = resolver.read(block_object(info.i, info.k));
        auto ljk = resolver.read(block_object(info.j, info.k));
        auto aij = resolver.write(block_object(info.i, info.j));
        gemm_minus_abt(reinterpret_cast<const double*>(lik.data()), hi,
                       reinterpret_cast<const double*>(ljk.data()), hj,
                       reinterpret_cast<double*>(aij.data()), hi, hi, hj, hk);
        break;
      }
    }
  };
}

std::vector<double> CholeskyApp::extract_l_dense(
    const rt::ThreadedExecutor& exec) const {
  const Index n = a_.n_cols();
  std::vector<double> l(static_cast<std::size_t>(n) * n, 0.0);
  for (const auto& [key, d] : object_of_block_) {
    const Index bi = static_cast<Index>(key >> 32);
    const Index bj = static_cast<Index>(key & 0xffffffff);
    const Index r0 = layout_.block_begin(bi);
    const Index c0 = layout_.block_begin(bj);
    const Index h = layout_.block_width(bi);
    const Index w = layout_.block_width(bj);
    const std::vector<std::byte> content = exec.read_object(d);
    const auto* values = reinterpret_cast<const double*>(content.data());
    for (Index c = 0; c < w; ++c) {
      for (Index r = 0; r < h; ++r) {
        const Index gr = r0 + r;
        const Index gc = c0 + c;
        if (gr < gc) continue;  // keep the lower triangle only
        l[static_cast<std::size_t>(gc) * n + gr] =
            values[static_cast<std::size_t>(c) * h + r];
      }
    }
  }
  return l;
}

}  // namespace rapid::num
