// Dense column-major kernels used by the block factorization task bodies.
// These are the BLAS-3 style routines the paper's tasks execute (DGEMM /
// DTRSM / DPOTRF / panel DGETRF), written from scratch — no external BLAS.
//
// All matrices are column-major with an explicit leading dimension (ld),
// operating on raw double pointers into data-object buffers.
//
// Each kernel dispatches between the original reference loops (kept as
// `*_ref`) and register-blocked SIMD microkernels; see dispatch.hpp for the
// selection policy and the RAPID_NATIVE build option.
#pragma once

#include <cstdint>
#include <span>

namespace rapid::num {

/// In-place Cholesky of the lower triangle of the n×n matrix A (ld >= n).
/// The strictly upper triangle is not referenced. Throws rapid::Error if a
/// non-positive pivot appears (matrix not SPD).
void potrf_lower(double* a, std::int64_t ld, std::int64_t n);

/// B := B * L^{-T} for the n×n lower-triangular L (unit_diag=false), with B
/// m×n. This is the Cholesky "scale" operation: L_ik = A_ik * L_kk^{-T}.
void trsm_right_lower_transpose(const double* l, std::int64_t ldl,
                                double* b, std::int64_t ldb, std::int64_t m,
                                std::int64_t n);

/// X := L^{-1} * X for the m×m lower-triangular L with unit diagonal, X is
/// m×n. This is the LU "U-panel" solve.
void trsm_left_unit_lower(const double* l, std::int64_t ldl, double* x,
                          std::int64_t ldx, std::int64_t m, std::int64_t n);

/// C := C - A * B^T, with A m×k, B n×k, C m×n.
void gemm_minus_abt(const double* a, std::int64_t lda, const double* b,
                    std::int64_t ldb, double* c, std::int64_t ldc,
                    std::int64_t m, std::int64_t n, std::int64_t k);

/// C := C - A * B, with A m×k, B k×n, C m×n.
void gemm_minus_ab(const double* a, std::int64_t lda, const double* b,
                   std::int64_t ldb, double* c, std::int64_t ldc,
                   std::int64_t m, std::int64_t n, std::int64_t k);

/// Partial-pivoting LU of an m×w panel (m >= w), in place: unit-lower L
/// below the diagonal, U on and above. pivots[j] receives the panel-local
/// row index (0-based, >= j) swapped into position j. Row swaps span all w
/// panel columns. Throws rapid::Error on an exactly singular column.
void getrf_panel(double* a, std::int64_t ld, std::int64_t m, std::int64_t w,
                 std::int32_t* pivots);

/// Applies panel pivots (as produced by getrf_panel, rows relative to
/// `row_offset` within the target) to an m×n block: for j ascending,
/// swap rows (row_offset + j) and (row_offset + pivots[j]).
void apply_pivots(double* a, std::int64_t ld, std::int64_t n,
                  std::int64_t row_offset, std::span<const std::int32_t> pivots);

/// Reference implementations: the original naive loops, kept verbatim as
/// the correctness oracle for the blocked/SIMD paths (see dispatch.hpp).
/// Same contracts as the dispatching entry points above.
void potrf_lower_ref(double* a, std::int64_t ld, std::int64_t n);
void trsm_right_lower_transpose_ref(const double* l, std::int64_t ldl,
                                    double* b, std::int64_t ldb,
                                    std::int64_t m, std::int64_t n);
void trsm_left_unit_lower_ref(const double* l, std::int64_t ldl, double* x,
                              std::int64_t ldx, std::int64_t m,
                              std::int64_t n);
void gemm_minus_abt_ref(const double* a, std::int64_t lda, const double* b,
                        std::int64_t ldb, double* c, std::int64_t ldc,
                        std::int64_t m, std::int64_t n, std::int64_t k);
void gemm_minus_ab_ref(const double* a, std::int64_t lda, const double* b,
                       std::int64_t ldb, double* c, std::int64_t ldc,
                       std::int64_t m, std::int64_t n, std::int64_t k);
void getrf_panel_ref(double* a, std::int64_t ld, std::int64_t m,
                     std::int64_t w, std::int32_t* pivots);

/// Flop counts used for task weights (match the kernel loops above).
double flops_potrf(std::int64_t n);
double flops_trsm(std::int64_t m, std::int64_t n);
double flops_gemm(std::int64_t m, std::int64_t n, std::int64_t k);
double flops_getrf_panel(std::int64_t m, std::int64_t w);

}  // namespace rapid::num
