#include "rapid/num/reference.hpp"

#include <algorithm>
#include <cmath>

#include "rapid/num/kernels.hpp"
#include "rapid/support/check.hpp"

namespace rapid::num {

std::vector<double> dense_cholesky(std::vector<double> a, std::int64_t n) {
  RAPID_CHECK(static_cast<std::int64_t>(a.size()) == n * n,
              "dense_cholesky: size mismatch");
  potrf_lower(a.data(), n, n);
  // Zero the strictly upper triangle so the result is exactly L.
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < j; ++i) {
      a[j * n + i] = 0.0;
    }
  }
  return a;
}

DenseLu dense_lu(std::vector<double> a, std::int64_t n) {
  RAPID_CHECK(static_cast<std::int64_t>(a.size()) == n * n,
              "dense_lu: size mismatch");
  DenseLu out;
  out.piv.assign(static_cast<std::size_t>(n), 0);
  // Right-looking LU, one column at a time (w = n panel).
  getrf_panel(a.data(), n, n, n, out.piv.data());
  out.lu = std::move(a);
  return out;
}

double cholesky_residual(const sparse::CscMatrix& a,
                         const std::vector<double>& l_dense) {
  const std::int64_t n = a.n_cols();
  std::vector<double> prod(static_cast<std::size_t>(n * n), 0.0);
  // prod = L * L^T.
  for (std::int64_t k = 0; k < n; ++k) {
    for (std::int64_t j = 0; j < n; ++j) {
      const double ljk = l_dense[k * n + j];
      if (ljk == 0.0) continue;
      for (std::int64_t i = 0; i < n; ++i) {
        prod[j * n + i] += l_dense[k * n + i] * ljk;
      }
    }
  }
  const std::vector<double> dense_a = a.to_dense();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < prod.size(); ++i) {
    const double d = prod[i] - dense_a[i];
    num += d * d;
    den += dense_a[i] * dense_a[i];
  }
  return std::sqrt(num) / std::max(std::sqrt(den), 1e-300);
}

double lu_residual(const sparse::CscMatrix& a, const std::vector<double>& lu,
                   const std::vector<std::int32_t>& piv) {
  const std::int64_t n = a.n_cols();
  std::vector<double> pa = a.to_dense();
  // Apply the pivot sequence to A's rows, in factorization order.
  for (std::int64_t j = 0; j < n; ++j) {
    const std::int64_t r = piv[j];
    if (r == j) continue;
    for (std::int64_t c = 0; c < n; ++c) {
      std::swap(pa[c * n + j], pa[c * n + r]);
    }
  }
  // prod = L * U from the packed factor.
  std::vector<double> prod(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t k = 0; k < n; ++k) {
    for (std::int64_t j = k; j < n; ++j) {
      const double ukj = lu[j * n + k];  // U(k, j)
      if (ukj == 0.0) continue;
      prod[j * n + k] += ukj;  // L(k,k) = 1 contribution
      for (std::int64_t i = k + 1; i < n; ++i) {
        prod[j * n + i] += lu[k * n + i] * ukj;  // L(i,k) * U(k,j)
      }
    }
  }
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const double d = prod[i] - pa[i];
    num += d * d;
  }
  for (double v : a.values) den += v * v;
  return std::sqrt(num) / std::max(std::sqrt(den), 1e-300);
}

std::vector<double> cholesky_solve(const std::vector<double>& l,
                                   std::int64_t n, std::vector<double> b) {
  RAPID_CHECK(static_cast<std::int64_t>(b.size()) == n, "rhs size mismatch");
  // Forward: L y = b.
  for (std::int64_t j = 0; j < n; ++j) {
    b[j] /= l[j * n + j];
    const double yj = b[j];
    for (std::int64_t i = j + 1; i < n; ++i) {
      b[i] -= l[j * n + i] * yj;
    }
  }
  // Backward: L^T x = y.
  for (std::int64_t j = n - 1; j >= 0; --j) {
    double v = b[j];
    for (std::int64_t i = j + 1; i < n; ++i) {
      v -= l[j * n + i] * b[i];
    }
    b[j] = v / l[j * n + j];
  }
  return b;
}

std::vector<double> lu_solve(const std::vector<double>& lu,
                             const std::vector<std::int32_t>& piv,
                             std::int64_t n, std::vector<double> b) {
  RAPID_CHECK(static_cast<std::int64_t>(b.size()) == n, "rhs size mismatch");
  for (std::int64_t j = 0; j < n; ++j) {
    if (piv[j] != j) std::swap(b[j], b[piv[j]]);
  }
  // L y = Pb (unit lower).
  for (std::int64_t j = 0; j < n; ++j) {
    const double yj = b[j];
    for (std::int64_t i = j + 1; i < n; ++i) {
      b[i] -= lu[j * n + i] * yj;
    }
  }
  // U x = y.
  for (std::int64_t j = n - 1; j >= 0; --j) {
    b[j] /= lu[j * n + j];
    const double xj = b[j];
    for (std::int64_t i = 0; i < j; ++i) {
      b[i] -= lu[j * n + i] * xj;
    }
  }
  return b;
}

double max_rel_error(const std::vector<double>& x,
                     const std::vector<double>& y) {
  RAPID_CHECK(x.size() == y.size(), "size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double scale = std::max({std::abs(x[i]), std::abs(y[i]), 1.0});
    worst = std::max(worst, std::abs(x[i] - y[i]) / scale);
  }
  return worst;
}

}  // namespace rapid::num
