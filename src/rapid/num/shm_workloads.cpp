#include "rapid/num/shm_workloads.hpp"

#include <utility>

#include "rapid/num/reference.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/ordering.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::num {

namespace {

struct SpecParams {
  std::string app;
  sparse::Index grid = 12;
  sparse::Index block = 4;
  int procs = 4;
  std::string sched = "rcp";
  // grid app only
  int rows = 8;
  int cols = 8;
  std::int64_t delay = 0;
};

SpecParams parse_spec(const std::string& spec) {
  SpecParams p;
  const std::size_t colon = spec.find(':');
  p.app = spec.substr(0, colon);
  std::string rest =
      colon == std::string::npos ? std::string() : spec.substr(colon + 1);
  std::size_t pos = 0;
  while (pos < rest.size()) {
    std::size_t comma = rest.find(',', pos);
    if (comma == std::string::npos) comma = rest.size();
    const std::string kv = rest.substr(pos, comma - pos);
    pos = comma + 1;
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    RAPID_CHECK(eq != std::string::npos,
                cat("shm workload spec: expected key=value, got \"", kv,
                    "\" in \"", spec, "\""));
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    if (key == "grid") {
      p.grid = static_cast<sparse::Index>(std::stoll(val));
    } else if (key == "block") {
      p.block = static_cast<sparse::Index>(std::stoll(val));
    } else if (key == "procs") {
      p.procs = static_cast<int>(std::stoll(val));
    } else if (key == "sched") {
      p.sched = val;
    } else if (key == "rows") {
      p.rows = static_cast<int>(std::stoll(val));
    } else if (key == "cols") {
      p.cols = static_cast<int>(std::stoll(val));
    } else if (key == "delay") {
      p.delay = std::stoll(val);
    } else {
      RAPID_CHECK(false, cat("shm workload spec: unknown key \"", key,
                             "\" in \"", spec, "\""));
    }
  }
  RAPID_CHECK(p.grid >= 2 && p.block >= 1 && p.procs >= 1 && p.rows >= 1 &&
                  p.cols >= 1 && p.delay >= 0,
              cat("shm workload spec: degenerate parameters in \"", spec,
                  "\""));
  RAPID_CHECK(p.sched == "rcp" || p.sched == "dts" || p.sched == "mpo",
              cat("shm workload spec: sched must be rcp, dts or mpo in \"",
                  spec, "\""));
  return p;
}

sparse::CscMatrix nd_grid(sparse::Index s) {
  sparse::CscMatrix a = sparse::grid_laplacian_2d(s, s);
  return a.permuted_symmetric(sparse::nested_dissection_2d(s, s));
}

}  // namespace

double ShmWorkload::residual(const rt::ThreadedExecutor& exec) const {
  if (cholesky) {
    return cholesky_residual(cholesky->matrix(),
                             cholesky->extract_l_dense(exec));
  }
  if (grid) return static_cast<double>(grid->max_abs_error(exec));
  const LuApp::Extracted x = lu->extract(exec);
  return lu_residual(lu->matrix(), x.lu, x.piv);
}

std::unique_ptr<ShmWorkload> build_shm_workload(const std::string& spec) {
  const SpecParams p = parse_spec(spec);
  auto out = std::make_unique<ShmWorkload>();
  out->spec = spec;
  if (p.app == "cholesky") {
    out->cholesky = std::make_unique<CholeskyApp>(
        CholeskyApp::build(nd_grid(p.grid), p.block, p.procs));
  } else if (p.app == "lu") {
    out->lu = std::make_unique<LuApp>(
        LuApp::build(nd_grid(p.grid), p.block, p.procs));
  } else if (p.app == "grid") {
    out->grid = std::make_unique<GridIntApp>(
        GridIntApp::build(p.rows, p.cols, p.procs, p.delay));
  } else {
    RAPID_CHECK(false, cat("shm workload spec: unknown app \"", p.app,
                           "\" (want cholesky, lu or grid) in \"", spec,
                           "\""));
  }
  const graph::TaskGraph& g = out->graph();
  const auto assignment = sched::owner_compute_tasks(g, p.procs);
  const auto params = machine::MachineParams::cray_t3d(p.procs);
  out->schedule =
      p.sched == "dts" ? sched::schedule_dts(g, assignment, p.procs, params)
      : p.sched == "mpo"
          ? sched::schedule_mpo(g, assignment, p.procs, params)
          : sched::schedule_rcp(g, assignment, p.procs, params);
  out->plan = rt::build_run_plan(g, out->schedule);
  const auto liveness = sched::analyze_liveness(g, out->schedule);
  out->min_mem = liveness.min_mem();
  out->tot_mem = liveness.tot_mem();
  return out;
}

}  // namespace rapid::num
