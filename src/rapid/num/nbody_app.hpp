// Cell-based N-body galaxy simulation — the paper's other motivating
// application class ("irregular applications which involve iterative
// computation and have invariant or slowly changed dependence structures,
// such as those in sparse matrix computation and N-body galaxy
// simulations", §2).
//
// The domain is a W×H grid of cells, each owning a fixed set of particles.
// One timestep is:
//   SUMMARY(c)   particles[c]            -> summary[c]   (mass, Σx, Σy)
//   ZROW(r)      -                       -> rowsum[r] = 0
//   ROWACC(r,c)  summary[c]              +> rowsum[r]    (commuting)
//   ZGLOB        -                       -> global = 0
//   GLOBACC(r)   rowsum[r]               +> global       (commuting)
//   FORCE(c)     particles[3x3 nbrs], summaries[3x3 nbrs], global
//                                        -> forces[c]
//                (near field: softened pairwise gravity; far field: the
//                 global aggregate minus the near cells, as a point mass)
//   UPDATE(c)    forces[c]               +> particles[c] (leapfrog)
// and T timesteps are unrolled into one task graph, exactly how RAPID's
// inspector/executor split amortizes preprocessing over iterations. Cell
// membership is static across steps (the "invariant dependence structure"
// assumption), so the same plan drives every iteration.
//
// Object sizes are deliberately mixed — particle sets (4·P doubles), force
// buffers (2·P), 3-double summaries — giving the runtime the
// mixed-granularity traffic the paper's model is about, including multiple
// content versions of the same object per destination across timesteps.
#pragma once

#include <vector>

#include "rapid/graph/task_graph.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::num {

struct NBodyConfig {
  std::int32_t width = 6;               // cells per row
  std::int32_t height = 6;              // rows
  std::int32_t particles_per_cell = 8;  // fixed membership
  std::int32_t timesteps = 3;
  double dt = 1e-3;
  double softening = 5e-2;
  std::uint64_t seed = 2026;
};

class NBodyApp {
 public:
  struct TaskInfo {
    enum class Kind {
      kSummary,
      kZeroRow,
      kRowAccumulate,
      kZeroGlobal,
      kGlobalAccumulate,
      kForce,
      kUpdate,
    };
    Kind kind = Kind::kSummary;
    std::int32_t cell = -1;  // cell index (kSummary/kRowAcc/kForce/kUpdate)
    std::int32_t row = -1;   // row index (kZeroRow/kRowAcc/kGlobalAcc)
    std::int32_t step = 0;
  };

  static NBodyApp build(const NBodyConfig& config, int num_procs);

  const graph::TaskGraph& graph() const { return graph_; }
  graph::TaskGraph& mutable_graph() { return graph_; }
  const NBodyConfig& config() const { return config_; }
  const TaskInfo& info(graph::TaskId t) const { return task_info_[t]; }

  rt::ObjectInit make_init() const;
  rt::TaskBody make_body() const;

  /// All particle states (x, y, vx, vy per particle) after a run, in cell
  /// order — comparable against reference_run().
  std::vector<double> extract_particles(
      const rt::ThreadedExecutor& exec) const;

  /// Sequential reference simulation with identical arithmetic per task;
  /// only the accumulation order of the commuting reductions may differ
  /// (floating-point associativity), so compare with a tolerance.
  std::vector<double> reference_run() const;

 private:
  std::int32_t num_cells() const { return config_.width * config_.height; }
  std::int32_t cell_of(std::int32_t x, std::int32_t y) const {
    return y * config_.width + x;
  }
  std::vector<double> initial_particles() const;

  // One task's arithmetic, shared by the runtime body and the reference.
  // `self_index` locates the target cell inside the sorted near lists.
  void do_summary(const double* particles, double* summary) const;
  void do_force(std::size_t self_index, const double* const* near_particles,
                const double* const* near_summaries, std::size_t near_count,
                const double* global, double* forces) const;
  void do_update(const double* forces, double* particles) const;

  NBodyConfig config_;
  graph::TaskGraph graph_;
  std::vector<TaskInfo> task_info_;
  std::vector<graph::DataId> particles_, summaries_, forces_;  // per cell
  std::vector<graph::DataId> rowsums_;                         // per row
  graph::DataId global_ = graph::kInvalidData;
  std::vector<std::vector<std::int32_t>> neighbors_;  // per cell, sorted
};

}  // namespace rapid::num
