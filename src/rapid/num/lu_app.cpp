#include "rapid/num/lu_app.hpp"

#include <algorithm>
#include <cstring>

#include "rapid/num/kernels.hpp"
#include "rapid/sparse/symbolic.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::num {

std::int64_t LuApp::stored_rows(Index block) const {
  return static_cast<std::int64_t>(layout_.n - row_lo_[block]);
}

LuApp LuApp::build(sparse::CscMatrix a, Index block_size, int num_procs) {
  RAPID_CHECK(a.n_rows() == a.n_cols(), "LU needs a square matrix");
  RAPID_CHECK(num_procs > 0, "num_procs must be positive");
  LuApp app;
  app.a_ = std::move(a);
  const Index n = app.a_.n_cols();
  app.layout_ = sparse::BlockLayout(n, block_size);
  const Index nb = app.layout_.num_blocks;

  // Row-merge static symbolic bound: covers struct(L + U) of PA = LU for
  // every partial-pivoting sequence (see symbolic_lu_bound_pivoting).
  const sparse::CscPattern full_bound =
      sparse::symbolic_lu_bound_pivoting(app.a_.pattern);

  // Row span per column block from the bound pattern.
  app.row_lo_.assign(static_cast<std::size_t>(nb), n);
  for (Index j = 0; j < n; ++j) {
    const Index bj = app.layout_.block_of(j);
    if (full_bound.col_ptr[j] < full_bound.col_ptr[j + 1]) {
      app.row_lo_[bj] = std::min(app.row_lo_[bj],
                                 full_bound.row_idx[full_bound.col_ptr[j]]);
    }
    app.row_lo_[bj] = std::min(app.row_lo_[bj], j);  // diagonal always stored
  }

  // Structural coupling: Update(k, j) exists iff the bound has an entry in
  // panel-k rows of block-j columns (a U block). The AᵀA closure guarantees
  // every value partial pivoting can move stays inside this structure.
  const sparse::CscPattern block_bound =
      sparse::project_to_blocks(full_bound, app.layout_, app.layout_);
  std::vector<std::vector<Index>> coupled_sources(
      static_cast<std::size_t>(nb));
  for (Index bj = 0; bj < nb; ++bj) {
    for (Index e = block_bound.col_ptr[bj]; e < block_bound.col_ptr[bj + 1];
         ++e) {
      const Index bk = block_bound.row_idx[e];
      if (bk < bj) coupled_sources[bj].push_back(bk);
    }
  }
  // Widen storage so every coupled panel's row swaps stay in range.
  for (Index bj = 0; bj < nb; ++bj) {
    for (Index bk : coupled_sources[bj]) {
      app.row_lo_[bj] =
          std::min(app.row_lo_[bj], app.layout_.block_begin(bk));
    }
  }

  // Data objects: dense rows [row_lo, n) × width, plus pivot slots.
  app.objects_.resize(static_cast<std::size_t>(nb));
  for (Index bk = 0; bk < nb; ++bk) {
    const Index w = app.layout_.block_width(bk);
    const std::int64_t bytes =
        (app.stored_rows(bk) * w + w) * static_cast<std::int64_t>(sizeof(double));
    app.objects_[bk] = app.graph_.add_data(
        cat("C[", bk, "]"), bytes,
        static_cast<graph::ProcId>(bk % num_procs));
  }

  // Tasks: for each panel k, Factor(k) then Update(k, j) for coupled j > k.
  // Emission order makes the inspector derive the exact chains the paper's
  // LU graphs have: ... Update(k-1, j), Update(k, j), ..., Factor(j).
  std::vector<std::vector<Index>> coupled_targets(
      static_cast<std::size_t>(nb));
  for (Index bj = 0; bj < nb; ++bj) {
    for (Index bk : coupled_sources[bj]) coupled_targets[bk].push_back(bj);
  }
  for (Index bk = 0; bk < nb; ++bk) {
    const Index w = app.layout_.block_width(bk);
    const Index ck0 = app.layout_.block_begin(bk);
    app.graph_.add_task(cat("FACT(", bk, ")"), {app.objects_[bk]},
                        {app.objects_[bk]},
                        flops_getrf_panel(n - ck0, w));
    app.task_info_.push_back(TaskInfo{TaskInfo::Kind::kFactor, bk, bk});
    for (Index bj : coupled_targets[bk]) {
      const Index wj = app.layout_.block_width(bj);
      const double flops =
          static_cast<double>(w) * w * wj +  // unit-lower solve, w×wj
          flops_gemm(n - app.layout_.block_end(bk), wj, w);
      app.graph_.add_task(cat("UPD(", bk, "->", bj, ")"),
                          {app.objects_[bk], app.objects_[bj]},
                          {app.objects_[bj]}, flops);
      app.task_info_.push_back(TaskInfo{TaskInfo::Kind::kUpdate, bk, bj});
    }
  }
  app.graph_.finalize();
  return app;
}

void LuApp::update_values(const sparse::CscMatrix& matrix) {
  RAPID_CHECK(matrix.pattern == a_.pattern,
              "update_values requires the build-time sparsity pattern");
  a_.values = matrix.values;
}

rt::ObjectInit LuApp::make_init() const {
  return [this](graph::DataId d, std::span<std::byte> buffer) {
    const Index bk = static_cast<Index>(
        std::find(objects_.begin(), objects_.end(), d) - objects_.begin());
    RAPID_CHECK(bk < layout_.num_blocks, cat("unknown LU object ", d));
    const Index lo = row_lo_[bk];
    const Index c0 = layout_.block_begin(bk);
    const Index w = layout_.block_width(bk);
    const std::int64_t m = stored_rows(bk);
    auto* values = reinterpret_cast<double*>(buffer.data());
    std::memset(buffer.data(), 0, buffer.size());
    for (Index c = c0; c < c0 + w; ++c) {
      for (Index e = a_.pattern.col_ptr[c]; e < a_.pattern.col_ptr[c + 1];
           ++e) {
        const Index r = a_.pattern.row_idx[e];
        RAPID_CHECK(r >= lo, "matrix entry below the static bound's row span");
        values[static_cast<std::int64_t>(c - c0) * m + (r - lo)] =
            a_.values[e];
      }
    }
  };
}

rt::TaskBody LuApp::make_body() const {
  return [this](graph::TaskId t, rt::ObjectResolver& resolver) {
    const TaskInfo& info = task_info_[t];
    const Index n = layout_.n;
    if (info.kind == TaskInfo::Kind::kFactor) {
      const Index bk = info.k;
      const Index w = layout_.block_width(bk);
      const Index ck0 = layout_.block_begin(bk);
      const Index lo = row_lo_[bk];
      const std::int64_t m = stored_rows(bk);
      auto span = resolver.write(objects_[bk]);
      auto* values = reinterpret_cast<double*>(span.data());
      // Panel = rows [ck0, n) of the stored range.
      std::vector<std::int32_t> piv(static_cast<std::size_t>(w));
      getrf_panel(values + (ck0 - lo), m, n - ck0, w, piv.data());
      // Pivots ride with the object (needed by remote Update tasks).
      double* piv_slot = values + m * w;
      for (Index c = 0; c < w; ++c) {
        piv_slot[c] = static_cast<double>(piv[c]);
      }
      return;
    }
    // Update(k, j).
    const Index bk = info.k;
    const Index bj = info.j;
    const Index wk = layout_.block_width(bk);
    const Index wj = layout_.block_width(bj);
    const Index ck0 = layout_.block_begin(bk);
    const Index ck1 = layout_.block_end(bk);
    const Index lok = row_lo_[bk];
    const Index loj = row_lo_[bj];
    RAPID_CHECK(loj <= ck0, "coupled block does not cover the panel rows");
    const std::int64_t mk = stored_rows(bk);
    const std::int64_t mj = stored_rows(bj);
    auto ksp = resolver.read(objects_[bk]);
    auto jsp = resolver.write(objects_[bj]);
    const auto* kval = reinterpret_cast<const double*>(ksp.data());
    auto* jval = reinterpret_cast<double*>(jsp.data());
    // 1. Apply panel-k pivots to block j (panel-local pivot row p means
    // global rows ck0+c <-> ck0+p).
    std::vector<std::int32_t> piv(static_cast<std::size_t>(wk));
    const double* piv_slot = kval + mk * wk;
    for (Index c = 0; c < wk; ++c) {
      piv[c] = static_cast<std::int32_t>(piv_slot[c]);
    }
    apply_pivots(jval, mj, wj, /*row_offset=*/ck0 - loj, piv);
    // 2. U block: solve L_kk (unit lower, w×w) against rows [ck0, ck1).
    trsm_left_unit_lower(kval + (ck0 - lok), mk, jval + (ck0 - loj), mj, wk,
                         wj);
    // 3. Trailing GEMM: rows [ck1, n) -= L(below, k) * U(panel, j).
    const std::int64_t below = n - ck1;
    if (below > 0) {
      gemm_minus_ab(kval + (ck1 - lok), mk, jval + (ck0 - loj), mj,
                    jval + (ck1 - loj), mj, below, wj, wk);
    }
  };
}

LuApp::Extracted LuApp::extract(const rt::ThreadedExecutor& exec) const {
  const Index n = layout_.n;
  Extracted out;
  out.lu.assign(static_cast<std::size_t>(n) * n, 0.0);
  out.piv.assign(static_cast<std::size_t>(n), 0);
  for (Index bk = 0; bk < layout_.num_blocks; ++bk) {
    const Index lo = row_lo_[bk];
    const Index c0 = layout_.block_begin(bk);
    const Index w = layout_.block_width(bk);
    const std::int64_t m = stored_rows(bk);
    const std::vector<std::byte> content = exec.read_object(objects_[bk]);
    const auto* values = reinterpret_cast<const double*>(content.data());
    for (Index c = 0; c < w; ++c) {
      for (std::int64_t r = 0; r < m; ++r) {
        out.lu[static_cast<std::size_t>(c0 + c) * n + (lo + r)] =
            values[static_cast<std::int64_t>(c) * m + r];
      }
      // Panel-local pivot -> global row index.
      out.piv[c0 + c] =
          static_cast<std::int32_t>(values[m * w + c]) + c0;
    }
  }
  // The run time never writes to finalized blocks, so columns left of a
  // panel missed that panel's row interchanges (LAPACK's laswp on the
  // trailing panels' left columns). Apply them now, panel by panel, to
  // obtain the standard packed LU of P·A.
  for (Index bk = 0; bk < layout_.num_blocks; ++bk) {
    const Index c0 = layout_.block_begin(bk);
    const Index c1 = layout_.block_end(bk);
    for (Index c = c0; c < c1; ++c) {
      const Index r = out.piv[c];
      if (r == c) continue;
      for (Index left = 0; left < c0; ++left) {
        std::swap(out.lu[static_cast<std::size_t>(left) * n + c],
                  out.lu[static_cast<std::size_t>(left) * n + r]);
      }
    }
  }
  return out;
}

}  // namespace rapid::num
