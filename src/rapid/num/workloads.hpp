// Named problem instances standing in for the paper's Harwell-Boeing
// matrices (DESIGN.md §2 documents each substitution). `scale` in (0, 1]
// shrinks the grid linearly so tests and CI-speed bench runs use the same
// generators as the full-size experiments.
#pragma once

#include <cstdint>
#include <string>

#include "rapid/sparse/csc.hpp"

namespace rapid::num {

struct Workload {
  std::string name;
  sparse::CscMatrix matrix;
  bool spd = false;
};

/// BCSSTK15 stand-in (paper: n = 3948 structural stiffness matrix):
/// 3-D 7-point grid Laplacian, nested-dissection ordered. Full scale uses a
/// 16×16×16 grid (n = 4096).
Workload bcsstk15_like(double scale = 1.0);

/// BCSSTK24 stand-in (paper: n = 3562): 2-D 9-point grid Laplacian,
/// nested-dissection ordered. Full scale uses 60×60 (n = 3600).
Workload bcsstk24_like(double scale = 1.0);

/// BCSSTK33 stand-in (paper: n = 8738, used up to 6080 columns): larger
/// 3-D grid, nested-dissection ordered. Full scale uses 20×20×16 (n = 6400).
Workload bcsstk33_like(double scale = 1.0);

/// "goodwin" stand-in (paper: n = 7320, fluid mechanics, unsymmetric):
/// convection-diffusion operator with structural asymmetry and strong
/// off-diagonal winds, nested-dissection ordered. Full scale uses 86×85
/// (n = 7310).
Workload goodwin_like(double scale = 1.0, std::uint64_t seed = 42);

}  // namespace rapid::num
