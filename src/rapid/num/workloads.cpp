#include "rapid/num/workloads.hpp"

#include <algorithm>
#include <cmath>

#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/ordering.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::num {

namespace {

sparse::Index scaled(sparse::Index full, double scale) {
  RAPID_CHECK(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  return std::max<sparse::Index>(
      4, static_cast<sparse::Index>(std::lround(full * scale)));
}

}  // namespace

Workload bcsstk15_like(double scale) {
  const sparse::Index s = scaled(16, scale);
  sparse::CscMatrix a = sparse::grid_laplacian_3d(s, s, s);
  const auto perm = sparse::nested_dissection_3d(s, s, s);
  return Workload{"bcsstk15-like", a.permuted_symmetric(perm), true};
}

Workload bcsstk24_like(double scale) {
  const sparse::Index s = scaled(60, scale);
  sparse::CscMatrix a = sparse::grid_laplacian_2d(s, s, /*stencil_points=*/9);
  const auto perm = sparse::nested_dissection_2d(s, s);
  return Workload{"bcsstk24-like", a.permuted_symmetric(perm), true};
}

Workload bcsstk33_like(double scale) {
  const sparse::Index sx = scaled(20, scale);
  const sparse::Index sy = scaled(20, scale);
  const sparse::Index sz = scaled(16, scale);
  sparse::CscMatrix a = sparse::grid_laplacian_3d(sx, sy, sz);
  const auto perm = sparse::nested_dissection_3d(sx, sy, sz);
  return Workload{"bcsstk33-like", a.permuted_symmetric(perm), true};
}

Workload goodwin_like(double scale, std::uint64_t seed) {
  const sparse::Index sx = scaled(86, scale);
  const sparse::Index sy = scaled(85, scale);
  Rng rng(seed);
  sparse::CscMatrix a =
      sparse::convection_diffusion_2d(sx, sy, /*drop_prob=*/0.08, rng);
  const auto perm = sparse::nested_dissection_2d(sx, sy);
  return Workload{"goodwin-like", a.permuted_symmetric(perm), false};
}

}  // namespace rapid::num
