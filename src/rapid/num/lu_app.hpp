// 1-D column-block sparse LU with partial pivoting (paper §5, workload 2).
// The dependence structure is fixed before numeric execution using the
// static symbolic factorization the paper relies on ([6]): the row-merge
// (George–Ng scheme) bound covers the fill of PA = LU for every
// partial-pivoting row order, so tasks, data objects and messages can be
// scheduled statically even though pivot choices are dynamic.
//
// Data object k = column block k, stored dense over rows [row_lo(k), n)
// (the bound's row span, widened so every coupled panel's pivot swaps stay
// in range), followed by the block's pivot indices. Tasks: Factor(k) — the
// pivoted panel factorization — and Update(k, j) for every structurally
// coupled j > k; updates to a block form a chain (pivoting makes them
// non-commutative), which is why RCP's memory behaviour is so poor on LU
// (Figure 7(b)).
#pragma once

#include <vector>

#include "rapid/graph/task_graph.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sparse/blocks.hpp"
#include "rapid/sparse/csc.hpp"

namespace rapid::num {

using sparse::Index;

class LuApp {
 public:
  struct TaskInfo {
    enum class Kind { kFactor, kUpdate };
    Kind kind = Kind::kFactor;
    Index k = 0;  // source panel
    Index j = 0;  // update target (kUpdate only)
  };

  /// Builds the task graph for factorizing `a` (square, any structure) with
  /// column blocks of `block_size`, 1-D cyclic owners over num_procs.
  static LuApp build(sparse::CscMatrix a, Index block_size, int num_procs);

  const graph::TaskGraph& graph() const { return graph_; }
  graph::TaskGraph& mutable_graph() { return graph_; }
  const sparse::CscMatrix& matrix() const { return a_; }
  const sparse::BlockLayout& layout() const { return layout_; }
  Index row_lo(Index block) const { return row_lo_[block]; }
  graph::DataId block_object(Index block) const { return objects_[block]; }
  const TaskInfo& info(graph::TaskId t) const { return task_info_[t]; }

  rt::ObjectInit make_init() const;
  rt::TaskBody make_body() const;

  /// Replaces the numeric values for the next run. The pattern must match
  /// the build-time matrix exactly — this is the paper's iterative use
  /// (e.g. Newton's method): the dependence structure, schedule and run
  /// plan are built once and reused across executions with new values.
  void update_values(const sparse::CscMatrix& matrix);

  /// Assembles the packed dense LU factor and the global pivot sequence
  /// from the owners' heaps after a run (LAPACK getrf conventions).
  struct Extracted {
    std::vector<double> lu;         // n×n column-major packed L\U
    std::vector<std::int32_t> piv;  // piv[j] = row swapped with j at step j
  };
  Extracted extract(const rt::ThreadedExecutor& exec) const;

 private:
  std::int64_t stored_rows(Index block) const;

  sparse::CscMatrix a_;
  sparse::BlockLayout layout_;
  std::vector<Index> row_lo_;
  std::vector<graph::DataId> objects_;
  graph::TaskGraph graph_;
  std::vector<TaskInfo> task_info_;
};

}  // namespace rapid::num
