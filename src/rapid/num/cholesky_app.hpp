// 2-D block sparse Cholesky (paper §5, workload 1): the scalar fill pattern
// from symbolic factorization is projected onto a uniform block grid; every
// present lower-triangular block of the factor becomes one data object
// (dense storage, so structurally-zero positions hold exact zeros), and the
// classic POTRF / TRSM / block-update task graph is registered through the
// public TaskGraph API with a 2-D cyclic owner mapping (Rothberg-Schreiber
// style, as the paper uses for scalability). Update tasks targeting the
// same block commute (they accumulate), which the graph captures with
// commute groups.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "rapid/graph/task_graph.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sparse/blocks.hpp"
#include "rapid/sparse/csc.hpp"
#include "rapid/sparse/symbolic.hpp"

namespace rapid::num {

using sparse::Index;

class CholeskyApp {
 public:
  struct TaskInfo {
    enum class Kind { kPotrf, kTrsm, kUpdate };
    Kind kind = Kind::kPotrf;
    Index i = 0, j = 0, k = 0;  // block coordinates (kind-dependent)
  };

  /// Builds the task graph for factorizing SPD `a` with square blocks of
  /// `block_size` on `num_procs` processors (2-D cyclic owners over a
  /// pr × pc grid chosen to tile num_procs).
  static CholeskyApp build(sparse::CscMatrix a, Index block_size,
                           int num_procs);

  const graph::TaskGraph& graph() const { return graph_; }
  graph::TaskGraph& mutable_graph() { return graph_; }
  const sparse::CscMatrix& matrix() const { return a_; }
  const sparse::BlockLayout& layout() const { return layout_; }
  const sparse::CscPattern& block_fill() const { return block_fill_; }
  const TaskInfo& info(graph::TaskId t) const { return task_info_[t]; }

  /// DataId of block (bi, bj), or kInvalidData if the block is not in the
  /// fill pattern.
  graph::DataId block_object(Index bi, Index bj) const;

  /// Callbacks for the threaded executor. The app must outlive the run.
  rt::ObjectInit make_init() const;
  rt::TaskBody make_body() const;

  /// Assembles the dense factor L from the owners' heaps after a run.
  std::vector<double> extract_l_dense(
      const rt::ThreadedExecutor& exec) const;

 private:
  sparse::CscMatrix a_;
  sparse::BlockLayout layout_;
  sparse::CscPattern block_fill_;
  graph::TaskGraph graph_;
  std::vector<TaskInfo> task_info_;
  std::unordered_map<std::int64_t, graph::DataId> object_of_block_;
  std::vector<std::pair<Index, Index>> block_of_object_;  // DataId -> (bi,bj)
};

}  // namespace rapid::num
