// Exact-integer wavefront workload: a rows x cols grid of int64 counters.
// Row 0 is produced from constants; row i sums two neighbours of row i-1
// ((j) and (j+1) mod cols); every object then gets a doubling update task
// (same-object read-modify-write, its own epoch). Owners are cyclic, so
// almost every edge crosses processors and the data plane carries real
// traffic. All arithmetic is 64-bit integer — any thread interleaving must
// reproduce the sequential interpretation bit-for-bit — which makes this
// the runtime service's cheap numerics oracle: a completed service run is
// checked for exactness without a reference solver.
//
// An optional per-task deterministic delay (a stateless hash of the task
// id, capped at delay_us) stretches task bodies so deadline pressure and
// fault windows are exercisable without changing the computed values.
#pragma once

#include <cstdint>
#include <vector>

#include "rapid/graph/task_graph.hpp"
#include "rapid/rt/threaded_executor.hpp"

namespace rapid::num {

class GridIntApp {
 public:
  /// Builds the graph for a rows x cols wavefront on num_procs cyclic
  /// owners. delay_us <= 0 means task bodies run at full speed.
  static GridIntApp build(int rows, int cols, int num_procs,
                          std::int64_t delay_us = 0);

  const graph::TaskGraph& graph() const { return graph_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::int64_t delay_us() const { return delay_us_; }

  /// Expected final value of every object, from the sequential
  /// interpretation in program order.
  const std::vector<std::int64_t>& expected() const { return expected_; }

  /// Callbacks for the threaded executor. The app must outlive the run.
  rt::ObjectInit make_init() const;
  rt::TaskBody make_body() const;

  /// Largest |final - expected| over all objects after a successful run;
  /// exactly 0 when the protocol delivered every version correctly.
  std::int64_t max_abs_error(const rt::ThreadedExecutor& exec) const;

 private:
  graph::TaskGraph graph_;
  std::vector<graph::DataId> objects_;
  std::vector<std::int64_t> expected_;
  int rows_ = 0, cols_ = 0;
  std::int64_t delay_us_ = 0;

  graph::DataId at(int i, int j) const {
    return objects_[static_cast<std::size_t>(i) * cols_ + j];
  }
};

}  // namespace rapid::num
