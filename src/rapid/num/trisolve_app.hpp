// Block sparse triangular solve — the other workload RAPID shipped with
// ("sparse Cholesky factorization and triangular solvers", §2). Given an
// SPD matrix, this app builds the task graph of the two-phase solve
//   L y = b,   Lᵀ x = y
// over the factor's block structure: each present block of L is a read-only
// data object (version-0 content), each block segment of the solution
// vector is a read-modify-write object. Off-diagonal updates into the same
// segment commute, giving the graph wide reduction fans; the diagonal
// solves chain along the elimination order — a very different DAG shape
// from the factorization apps, which is exactly why it is a good runtime
// stressor.
//
// The factor values are computed by the reference dense Cholesky at build
// time (this app validates the runtime, not a sparse factorization — use
// CholeskyApp for that).
#pragma once

#include <vector>

#include "rapid/graph/task_graph.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sparse/blocks.hpp"
#include "rapid/sparse/csc.hpp"

namespace rapid::num {

using sparse::Index;

class TriSolveApp {
 public:
  struct TaskInfo {
    enum class Kind {
      kForwardSolve,    // y_j = L_jj^{-1} y_j
      kForwardUpdate,   // y_i -= L_ij * y_j           (i > j, commuting)
      kBackwardSolve,   // x_j = L_jj^{-T} x_j
      kBackwardUpdate,  // x_j -= L_ijᵀ * x_i          (i > j, commuting)
    };
    Kind kind = Kind::kForwardSolve;
    Index i = 0, j = 0;
  };

  /// Builds the solve graph for SPD `a` with right-hand side b = A·1 (so
  /// the exact solution is the all-ones vector). Block (i,j) of L lives on
  /// the owner of segment i (2-D would also work; this matches RAPID's
  /// vector-aligned placement); segments are distributed cyclically.
  static TriSolveApp build(sparse::CscMatrix a, Index block_size,
                           int num_procs);

  const graph::TaskGraph& graph() const { return graph_; }
  graph::TaskGraph& mutable_graph() { return graph_; }
  const sparse::CscMatrix& matrix() const { return a_; }
  const sparse::BlockLayout& layout() const { return layout_; }
  const TaskInfo& info(graph::TaskId t) const { return task_info_[t]; }

  rt::ObjectInit make_init() const;
  rt::TaskBody make_body() const;

  /// Gathers the solution vector after a run.
  std::vector<double> extract_solution(
      const rt::ThreadedExecutor& exec) const;

  /// max_i |x_i - 1| for the built right-hand side.
  static double solution_error(const std::vector<double>& x);

 private:
  graph::DataId l_block(Index bi, Index bj) const;

  sparse::CscMatrix a_;
  sparse::BlockLayout layout_;
  sparse::CscPattern block_fill_;  // lower-triangular block pattern of L
  std::vector<double> l_dense_;    // reference factor, column-major
  std::vector<double> rhs_;
  graph::TaskGraph graph_;
  std::vector<TaskInfo> task_info_;
  std::vector<graph::DataId> segment_;            // per block row
  std::vector<std::vector<graph::DataId>> lmap_;  // [bi][bj] or -1
};

}  // namespace rapid::num
