// Kernel dispatch: every public kernel in kernels.hpp is a thin selector
// between the original reference loops (kept verbatim as `*_ref`) and the
// register-blocked, explicitly vectorized microkernels added by the hot-path
// pass. Selection is process-global and cheap (one relaxed atomic load per
// kernel call):
//
//   kAuto    — size heuristic: small operands take the reference loops
//              (packing overhead dominates below ~16x8x8), large operands
//              take the blocked path. This is the default.
//   kRef     — force the reference loops (bit-exact with the pre-PR code).
//   kBlocked — force the blocked/SIMD path regardless of size; used by the
//              property tests so edge shapes (m % 8 != 0, n % 4 != 0, tiny
//              k) exercise the microkernel tails.
//
// The blocked path uses portable GCC/Clang vector extensions
// (`__attribute__((vector_size)))` when available and a scalar
// register-blocked fallback otherwise; `kernels_vectorized()` reports which
// one was compiled in. The `RAPID_NATIVE` CMake option additionally compiles
// the rapid_num library with -march=native so the vector extension types
// widen to whatever the host offers (AVX2/AVX-512 on x86).
#pragma once

#include <cstdint>

namespace rapid::num {

enum class KernelLevel : std::int32_t {
  kAuto = 0,
  kRef = 1,
  kBlocked = 2,
};

/// Current process-global dispatch level (relaxed load; default kAuto).
KernelLevel kernel_level() noexcept;

/// Sets the process-global dispatch level. Intended for tests and benches;
/// task bodies never touch it.
void set_kernel_level(KernelLevel level) noexcept;

/// "auto" / "ref" / "blocked".
const char* kernel_level_name(KernelLevel level) noexcept;

/// True when the blocked path was compiled with GCC/Clang vector extensions
/// (false means the scalar register-blocked fallback is in use).
bool kernels_vectorized() noexcept;

}  // namespace rapid::num
