// Kernel dispatch: every public kernel in kernels.hpp is a thin selector
// between the original reference loops (kept verbatim as `*_ref`) and the
// register-blocked, explicitly vectorized microkernels added by the hot-path
// pass. Selection is process-global and cheap (one relaxed atomic load per
// kernel call):
//
//   kAuto    — size heuristic: small operands take the reference loops
//              (packing overhead dominates below ~16x8x8), large operands
//              take the blocked path. This is the default.
//   kRef     — force the reference loops (bit-exact with the pre-PR code).
//   kBlocked — force the blocked/SIMD path regardless of size; used by the
//              property tests so edge shapes (m % 8 != 0, n % 4 != 0, tiny
//              k) exercise the microkernel tails.
//
// The blocked path uses portable GCC/Clang vector extensions
// (`__attribute__((vector_size)))` when available and a scalar
// register-blocked fallback otherwise; `kernels_vectorized()` reports which
// one was compiled in. The `RAPID_NATIVE` CMake option additionally compiles
// the rapid_num library with -march=native so the vector extension types
// widen to whatever the host offers (AVX2/AVX-512 on x86).
#pragma once

#include <cstdint>

namespace rapid::num {

enum class KernelLevel : std::int32_t {
  kAuto = 0,
  kRef = 1,
  kBlocked = 2,
};

/// Effective dispatch level for the calling thread: the thread-local
/// override when one is installed, the process-global level otherwise
/// (relaxed load; default kAuto).
KernelLevel kernel_level() noexcept;

/// Sets the process-global dispatch level. Intended for tests and benches;
/// task bodies never touch it.
void set_kernel_level(KernelLevel level) noexcept;

namespace detail {
/// Per-thread dispatch override; -1 means "inherit the process global".
/// An inline variable so setting it from another module (the executor's
/// worker threads) needs no link dependency on rapid_num.
inline thread_local std::int32_t t_kernel_override = -1;
}  // namespace detail

/// Installs a thread-local dispatch override (KernelLevel as int; any
/// negative value clears it). The runtime service admits concurrent runs
/// with different RunConfig::kernel_dispatch into one process, so the
/// process-global level cannot be the only knob: executor worker threads
/// install their run's level here for the thread's lifetime, and threads of
/// runs that did not ask (kernel_dispatch < 0) keep the global behavior.
inline void set_thread_kernel_level(std::int32_t level) noexcept {
  detail::t_kernel_override = level;
}

/// The calling thread's override, or -1 when it inherits the global.
inline std::int32_t thread_kernel_level() noexcept {
  return detail::t_kernel_override;
}

/// "auto" / "ref" / "blocked".
const char* kernel_level_name(KernelLevel level) noexcept;

/// True when the blocked path was compiled with GCC/Clang vector extensions
/// (false means the scalar register-blocked fallback is in use).
bool kernels_vectorized() noexcept;

}  // namespace rapid::num
