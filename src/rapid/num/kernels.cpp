#include "rapid/num/kernels.hpp"

#include <cmath>

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::num {

void potrf_lower(double* a, std::int64_t ld, std::int64_t n) {
  RAPID_CHECK(ld >= n && n >= 0, "potrf: bad dimensions");
  for (std::int64_t j = 0; j < n; ++j) {
    double diag = a[j * ld + j];
    for (std::int64_t k = 0; k < j; ++k) {
      diag -= a[k * ld + j] * a[k * ld + j];
    }
    RAPID_CHECK(diag > 0.0,
                cat("potrf: non-positive pivot ", diag, " at column ", j));
    const double root = std::sqrt(diag);
    a[j * ld + j] = root;
    const double inv = 1.0 / root;
    for (std::int64_t i = j + 1; i < n; ++i) {
      double v = a[j * ld + i];
      for (std::int64_t k = 0; k < j; ++k) {
        v -= a[k * ld + i] * a[k * ld + j];
      }
      a[j * ld + i] = v * inv;
    }
  }
}

void trsm_right_lower_transpose(const double* l, std::int64_t ldl, double* b,
                                std::int64_t ldb, std::int64_t m,
                                std::int64_t n) {
  // Solve X * L^T = B column by column of X: column j of X depends on
  // earlier columns since (X L^T)(:,j) = sum_{k>=j} X(:,k) L(j,k)... using
  // L lower: (L^T)(k,j) = L(j,k), nonzero for k <= j. So
  // B(:,j) = sum_{k<=j} X(:,k) * L(j,k)  =>  process j ascending.
  for (std::int64_t j = 0; j < n; ++j) {
    const double inv = 1.0 / l[j * ldl + j];
    for (std::int64_t k = 0; k < j; ++k) {
      const double ljk = l[k * ldl + j];
      if (ljk == 0.0) continue;
      for (std::int64_t i = 0; i < m; ++i) {
        b[j * ldb + i] -= b[k * ldb + i] * ljk;
      }
    }
    for (std::int64_t i = 0; i < m; ++i) {
      b[j * ldb + i] *= inv;
    }
  }
}

void trsm_left_unit_lower(const double* l, std::int64_t ldl, double* x,
                          std::int64_t ldx, std::int64_t m, std::int64_t n) {
  // Forward substitution with unit diagonal, per column of X.
  for (std::int64_t j = 0; j < n; ++j) {
    double* col = x + j * ldx;
    for (std::int64_t i = 0; i < m; ++i) {
      const double xi = col[i];
      if (xi == 0.0) continue;
      for (std::int64_t r = i + 1; r < m; ++r) {
        col[r] -= l[i * ldl + r] * xi;
      }
    }
  }
}

void gemm_minus_abt(const double* a, std::int64_t lda, const double* b,
                    std::int64_t ldb, double* c, std::int64_t ldc,
                    std::int64_t m, std::int64_t n, std::int64_t k) {
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const double bjk = b[kk * ldb + j];
      if (bjk == 0.0) continue;
      const double* acol = a + kk * lda;
      double* ccol = c + j * ldc;
      for (std::int64_t i = 0; i < m; ++i) {
        ccol[i] -= acol[i] * bjk;
      }
    }
  }
}

void gemm_minus_ab(const double* a, std::int64_t lda, const double* b,
                   std::int64_t ldb, double* c, std::int64_t ldc,
                   std::int64_t m, std::int64_t n, std::int64_t k) {
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const double bkj = b[j * ldb + kk];
      if (bkj == 0.0) continue;
      const double* acol = a + kk * lda;
      double* ccol = c + j * ldc;
      for (std::int64_t i = 0; i < m; ++i) {
        ccol[i] -= acol[i] * bkj;
      }
    }
  }
}

void getrf_panel(double* a, std::int64_t ld, std::int64_t m, std::int64_t w,
                 std::int32_t* pivots) {
  RAPID_CHECK(m >= w && w >= 0, "getrf_panel: need m >= w");
  for (std::int64_t j = 0; j < w; ++j) {
    // Pivot search in column j, rows [j, m).
    std::int64_t piv = j;
    double best = std::abs(a[j * ld + j]);
    for (std::int64_t i = j + 1; i < m; ++i) {
      const double v = std::abs(a[j * ld + i]);
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    RAPID_CHECK(best > 0.0, cat("getrf: singular panel column ", j));
    pivots[j] = static_cast<std::int32_t>(piv);
    if (piv != j) {
      for (std::int64_t c = 0; c < w; ++c) {
        std::swap(a[c * ld + j], a[c * ld + piv]);
      }
    }
    const double inv = 1.0 / a[j * ld + j];
    for (std::int64_t i = j + 1; i < m; ++i) {
      a[j * ld + i] *= inv;
    }
    for (std::int64_t c = j + 1; c < w; ++c) {
      const double ujc = a[c * ld + j];
      if (ujc == 0.0) continue;
      for (std::int64_t i = j + 1; i < m; ++i) {
        a[c * ld + i] -= a[j * ld + i] * ujc;
      }
    }
  }
}

void apply_pivots(double* a, std::int64_t ld, std::int64_t n,
                  std::int64_t row_offset,
                  std::span<const std::int32_t> pivots) {
  for (std::size_t j = 0; j < pivots.size(); ++j) {
    const std::int64_t r1 = row_offset + static_cast<std::int64_t>(j);
    const std::int64_t r2 = row_offset + pivots[j];
    if (r1 == r2) continue;
    for (std::int64_t c = 0; c < n; ++c) {
      std::swap(a[c * ld + r1], a[c * ld + r2]);
    }
  }
}

double flops_potrf(std::int64_t n) {
  return static_cast<double>(n) * n * n / 3.0;
}

double flops_trsm(std::int64_t m, std::int64_t n) {
  return static_cast<double>(m) * n * n;
}

double flops_gemm(std::int64_t m, std::int64_t n, std::int64_t k) {
  return 2.0 * static_cast<double>(m) * n * k;
}

double flops_getrf_panel(std::int64_t m, std::int64_t w) {
  return static_cast<double>(m) * w * w;
}

}  // namespace rapid::num
