#include "rapid/num/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include "rapid/num/dispatch.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::num {

// ---------------------------------------------------------------------------
// Dispatch level.
// ---------------------------------------------------------------------------

namespace {
std::atomic<KernelLevel> g_kernel_level{KernelLevel::kAuto};
}  // namespace

KernelLevel kernel_level() noexcept {
  const std::int32_t t = detail::t_kernel_override;
  if (t >= static_cast<std::int32_t>(KernelLevel::kAuto) &&
      t <= static_cast<std::int32_t>(KernelLevel::kBlocked)) {
    return static_cast<KernelLevel>(t);
  }
  return g_kernel_level.load(std::memory_order_relaxed);
}

void set_kernel_level(KernelLevel level) noexcept {
  g_kernel_level.store(level, std::memory_order_relaxed);
}

const char* kernel_level_name(KernelLevel level) noexcept {
  switch (level) {
    case KernelLevel::kAuto: return "auto";
    case KernelLevel::kRef: return "ref";
    case KernelLevel::kBlocked: return "blocked";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Reference kernels — the original naive loops, unchanged. These are the
// correctness oracle for the blocked paths and the small-operand fast path
// (packing overhead dominates below the dispatch thresholds).
// ---------------------------------------------------------------------------

void potrf_lower_ref(double* a, std::int64_t ld, std::int64_t n) {
  RAPID_CHECK(ld >= n && n >= 0, "potrf: bad dimensions");
  for (std::int64_t j = 0; j < n; ++j) {
    double diag = a[j * ld + j];
    for (std::int64_t k = 0; k < j; ++k) {
      diag -= a[k * ld + j] * a[k * ld + j];
    }
    RAPID_CHECK(diag > 0.0,
                cat("potrf: non-positive pivot ", diag, " at column ", j));
    const double root = std::sqrt(diag);
    a[j * ld + j] = root;
    const double inv = 1.0 / root;
    for (std::int64_t i = j + 1; i < n; ++i) {
      double v = a[j * ld + i];
      for (std::int64_t k = 0; k < j; ++k) {
        v -= a[k * ld + i] * a[k * ld + j];
      }
      a[j * ld + i] = v * inv;
    }
  }
}

void trsm_right_lower_transpose_ref(const double* l, std::int64_t ldl,
                                    double* b, std::int64_t ldb,
                                    std::int64_t m, std::int64_t n) {
  // Solve X * L^T = B column by column of X: column j of X depends on
  // earlier columns since (X L^T)(:,j) = sum_{k>=j} X(:,k) L(j,k)... using
  // L lower: (L^T)(k,j) = L(j,k), nonzero for k <= j. So
  // B(:,j) = sum_{k<=j} X(:,k) * L(j,k)  =>  process j ascending.
  for (std::int64_t j = 0; j < n; ++j) {
    const double inv = 1.0 / l[j * ldl + j];
    for (std::int64_t k = 0; k < j; ++k) {
      const double ljk = l[k * ldl + j];
      if (ljk == 0.0) continue;
      for (std::int64_t i = 0; i < m; ++i) {
        b[j * ldb + i] -= b[k * ldb + i] * ljk;
      }
    }
    for (std::int64_t i = 0; i < m; ++i) {
      b[j * ldb + i] *= inv;
    }
  }
}

void trsm_left_unit_lower_ref(const double* l, std::int64_t ldl, double* x,
                              std::int64_t ldx, std::int64_t m,
                              std::int64_t n) {
  // Forward substitution with unit diagonal, per column of X.
  for (std::int64_t j = 0; j < n; ++j) {
    double* col = x + j * ldx;
    for (std::int64_t i = 0; i < m; ++i) {
      const double xi = col[i];
      if (xi == 0.0) continue;
      for (std::int64_t r = i + 1; r < m; ++r) {
        col[r] -= l[i * ldl + r] * xi;
      }
    }
  }
}

void gemm_minus_abt_ref(const double* a, std::int64_t lda, const double* b,
                        std::int64_t ldb, double* c, std::int64_t ldc,
                        std::int64_t m, std::int64_t n, std::int64_t k) {
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const double bjk = b[kk * ldb + j];
      if (bjk == 0.0) continue;
      const double* acol = a + kk * lda;
      double* ccol = c + j * ldc;
      for (std::int64_t i = 0; i < m; ++i) {
        ccol[i] -= acol[i] * bjk;
      }
    }
  }
}

void gemm_minus_ab_ref(const double* a, std::int64_t lda, const double* b,
                       std::int64_t ldb, double* c, std::int64_t ldc,
                       std::int64_t m, std::int64_t n, std::int64_t k) {
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const double bkj = b[j * ldb + kk];
      if (bkj == 0.0) continue;
      const double* acol = a + kk * lda;
      double* ccol = c + j * ldc;
      for (std::int64_t i = 0; i < m; ++i) {
        ccol[i] -= acol[i] * bkj;
      }
    }
  }
}

void getrf_panel_ref(double* a, std::int64_t ld, std::int64_t m,
                     std::int64_t w, std::int32_t* pivots) {
  RAPID_CHECK(m >= w && w >= 0, "getrf_panel: need m >= w");
  for (std::int64_t j = 0; j < w; ++j) {
    // Pivot search in column j, rows [j, m).
    std::int64_t piv = j;
    double best = std::abs(a[j * ld + j]);
    for (std::int64_t i = j + 1; i < m; ++i) {
      const double v = std::abs(a[j * ld + i]);
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    RAPID_CHECK(best > 0.0, cat("getrf: singular panel column ", j));
    pivots[j] = static_cast<std::int32_t>(piv);
    if (piv != j) {
      for (std::int64_t c = 0; c < w; ++c) {
        std::swap(a[c * ld + j], a[c * ld + piv]);
      }
    }
    const double inv = 1.0 / a[j * ld + j];
    for (std::int64_t i = j + 1; i < m; ++i) {
      a[j * ld + i] *= inv;
    }
    for (std::int64_t c = j + 1; c < w; ++c) {
      const double ujc = a[c * ld + j];
      if (ujc == 0.0) continue;
      for (std::int64_t i = j + 1; i < m; ++i) {
        a[c * ld + i] -= a[j * ld + i] * ujc;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked SIMD microkernels.
//
// GEMM is the workhorse: an 8x4 register-blocked microkernel over packed
// panels (A packed into 8-row strips, B into 4-column strips, both
// zero-padded to the tile size so the edge tiles run the same code).
// The triangular kernels and the LU panel reduce to GEMM on their trailing
// updates, with the reference loops on the (small) diagonal blocks.
// ---------------------------------------------------------------------------

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define RAPID_HAVE_VEC 1
// Vector width tracks the widest FMA unit the TU is compiled for (8 doubles
// under RAPID_NATIVE on AVX-512, otherwise 4; pre-AVX targets split the
// 256-bit ops in half transparently). aligned(8): packed panels and user
// buffers are only 8-byte aligned, so loads/stores must not assume the
// natural vector alignment.
#if defined(__AVX512F__)
constexpr std::int64_t kVw = 8;
#else
constexpr std::int64_t kVw = 4;
#endif
using vd = double __attribute__((vector_size(kVw * 8), aligned(8)));
#else
#define RAPID_HAVE_VEC 0
constexpr std::int64_t kVw = 4;
#endif

constexpr std::int64_t kMr = 2 * kVw;  // microkernel rows (2 vectors)
// Microkernel columns: 2*kNr accumulators + 3 operand vectors must fit the
// architectural vector register file (16 on AVX2, 32 on AVX-512).
constexpr std::int64_t kNr = kVw;
constexpr std::int64_t kKc = 1024;     // k-panel depth per packing pass
constexpr std::int64_t kNb = 32;  // diagonal-block size for potrf/trsm/getrf

// Per-thread packing buffers: task bodies call the kernels thousands of
// times on small blocks, so the panels must not allocate per call.
void thread_scratch(std::vector<double>*& apack, std::vector<double>*& bpack,
                    std::vector<double>*& tmp) {
  static thread_local std::vector<double> ap, bp, tp;
  apack = &ap;
  bpack = &bp;
  tmp = &tp;
}

// Packs the kMr-row strip of A at rows [i0, i0+mr) x columns [k0, k0+kc)
// kk-major (kk*kMr + r), zero-padded to kMr rows. Only the ragged last
// strip needs this — full strips are loaded straight out of A, since
// column-major storage already makes the kMr rows of one column contiguous.
void pack_a_strip(const double* a, std::int64_t lda, std::int64_t i0,
                  std::int64_t mr, std::int64_t k0, std::int64_t kc,
                  std::vector<double>& out) {
  out.resize(static_cast<std::size_t>(kMr * kc));
  double* dst = out.data();
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const double* src = a + (k0 + kk) * lda + i0;
    for (std::int64_t r = 0; r < mr; ++r) dst[r] = src[r];
    for (std::int64_t r = mr; r < kMr; ++r) dst[r] = 0.0;
    dst += kMr;
  }
}

// Packs one kNr-column strip of the B operand, columns [j0, j0+nr) x depth
// [k0, k0+kc), kk-major (kk*kNr + jj), zero-padded. `transposed` selects
// the storage convention:
//   true  — gemm_minus_abt: B is n x k, operand(j, kk) = b[kk*ldb + j]
//   false — gemm_minus_ab:  B is k x n, operand(j, kk) = b[j*ldb + kk]
void pack_b_strip(const double* b, std::int64_t ldb, std::int64_t j0,
                  std::int64_t nr, std::int64_t k0, std::int64_t kc,
                  bool transposed, double* dst) {
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    for (std::int64_t jj = 0; jj < nr; ++jj) {
      dst[jj] = transposed ? b[(k0 + kk) * ldb + (j0 + jj)]
                           : b[(j0 + jj) * ldb + (k0 + kk)];
    }
    for (std::int64_t jj = nr; jj < kNr; ++jj) dst[jj] = 0.0;
    dst += kNr;
  }
}

#if RAPID_HAVE_VEC

// The by-value v4d helpers never cross a TU boundary (all inlined here), so
// GCC's "AVX vector return without AVX enabled changes the ABI" warning
// does not apply.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

inline vd splat(double x) {
  vd v;
  for (std::int64_t lane = 0; lane < kVw; ++lane) v[lane] = x;
  return v;
}

// acc[kMr x kNr] += A-strip(kMr x kc) * Bp(kc x kNr); the caller subtracts
// the accumulator from C (C -= A*B convention). The A strip is read with
// stride `astride` per kk — kMr for a packed edge strip, lda to stream the
// kMr contiguous rows of each column straight out of A (column-major makes
// packing A unnecessary for full strips). Constant trip counts — the
// compiler fully unrolls this into 2*kNr independent FMA chains held in
// registers.
inline void micro_tile(const double* ap, std::int64_t astride,
                       const double* bp, std::int64_t bstride,
                       std::int64_t kc, vd acc[2 * kNr]) {
  vd c[kNr][2] = {};
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC unroll 4
#endif
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    vd a0, a1;
    std::memcpy(&a0, ap, sizeof(vd));
    std::memcpy(&a1, ap + kVw, sizeof(vd));
    for (std::int64_t jj = 0; jj < kNr; ++jj) {
      const vd b = splat(bp[jj]);
      c[jj][0] += a0 * b;
      c[jj][1] += a1 * b;
    }
    ap += astride;
    bp += bstride;
  }
  for (std::int64_t jj = 0; jj < kNr; ++jj) {
    acc[2 * jj] = c[jj][0];
    acc[2 * jj + 1] = c[jj][1];
  }
}

// Full kMr x kNr tile: subtract the accumulator straight into C.
inline void store_full_tile(double* c, std::int64_t ldc,
                            const vd acc[2 * kNr]) {
  for (std::int64_t jj = 0; jj < kNr; ++jj) {
    double* col = c + jj * ldc;
    vd lo, hi;
    std::memcpy(&lo, col, sizeof(vd));
    std::memcpy(&hi, col + kVw, sizeof(vd));
    lo -= acc[2 * jj];
    hi -= acc[2 * jj + 1];
    std::memcpy(col, &lo, sizeof(vd));
    std::memcpy(col + kVw, &hi, sizeof(vd));
  }
}

#else  // !RAPID_HAVE_VEC — scalar register-blocked fallback.

struct vd {
  double lane[kVw];
};

inline void micro_tile(const double* ap, std::int64_t astride,
                       const double* bp, std::int64_t bstride,
                       std::int64_t kc, vd acc[2 * kNr]) {
  double buf[kMr * kNr] = {};
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    for (std::int64_t jj = 0; jj < kNr; ++jj) {
      const double b = bp[jj];
      double* col = buf + jj * kMr;
      for (std::int64_t r = 0; r < kMr; ++r) col[r] += ap[r] * b;
    }
    ap += astride;
    bp += bstride;
  }
  std::memcpy(acc, buf, sizeof(buf));
}

inline void store_full_tile(double* c, std::int64_t ldc,
                            const vd acc[2 * kNr]) {
  const double* buf = reinterpret_cast<const double*>(acc);
  for (std::int64_t jj = 0; jj < kNr; ++jj) {
    double* col = c + jj * ldc;
    for (std::int64_t r = 0; r < kMr; ++r) col[r] -= buf[jj * kMr + r];
  }
}

#endif  // RAPID_HAVE_VEC

// Edge tile: spill the (zero-padded) accumulator and subtract only the live
// mr x nr corner.
inline void store_edge_tile(double* c, std::int64_t ldc,
                            const vd acc[2 * kNr], std::int64_t mr,
                            std::int64_t nr) {
  double buf[kMr * kNr];
  std::memcpy(buf, acc, sizeof(buf));
  for (std::int64_t jj = 0; jj < nr; ++jj) {
    double* col = c + jj * ldc;
    for (std::int64_t r = 0; r < mr; ++r) col[r] -= buf[jj * kMr + r];
  }
}

// C -= A * op(B); `b_transposed` picks abt vs ab. Full A strips stream
// directly out of the column-major storage (the kMr rows of one column are
// contiguous), and in the abt case so do the kNr B values per depth step
// (operand(j, kk) = b[kk*ldb + j]), so only the ab orientation packs B into
// kNr-column panels; ragged edge strips get packed (zero-padded) in both.
void gemm_minus_blocked(const double* a, std::int64_t lda, const double* b,
                        std::int64_t ldb, double* c, std::int64_t ldc,
                        std::int64_t m, std::int64_t n, std::int64_t k,
                        bool b_transposed) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  std::vector<double>*apack, *bpack, *tmp;
  thread_scratch(apack, bpack, tmp);
  const std::int64_t m_main = m - m % kMr;
  const std::int64_t n_main = b_transposed ? n - n % kNr : n;
  for (std::int64_t k0 = 0; k0 < k; k0 += kKc) {
    const std::int64_t kc = std::min(kKc, k - k0);
    // For ab, pack every strip; for abt, only the ragged last one.
    const std::int64_t packed_strips =
        b_transposed ? (n_main < n ? 1 : 0) : (n + kNr - 1) / kNr;
    bpack->resize(static_cast<std::size_t>(packed_strips * kNr * kc));
    if (b_transposed) {
      if (n_main < n) {
        pack_b_strip(b, ldb, n_main, n - n_main, k0, kc, true, bpack->data());
      }
    } else {
      for (std::int64_t s = 0; s < packed_strips; ++s) {
        pack_b_strip(b, ldb, s * kNr, std::min(kNr, n - s * kNr), k0, kc,
                     false, bpack->data() + s * kNr * kc);
      }
    }
    if (m_main < m) {
      pack_a_strip(a, lda, m_main, m - m_main, k0, kc, *apack);
    }
    for (std::int64_t j0 = 0; j0 < n; j0 += kNr) {
      const std::int64_t nr = std::min(kNr, n - j0);
      const double* bp;
      std::int64_t bstride;
      if (b_transposed && j0 < n_main) {
        bp = b + k0 * ldb + j0;
        bstride = ldb;
      } else if (b_transposed) {
        bp = bpack->data();
        bstride = kNr;
      } else {
        bp = bpack->data() + (j0 / kNr) * kNr * kc;
        bstride = kNr;
      }
      vd acc[2 * kNr];
      for (std::int64_t i0 = 0; i0 < m_main; i0 += kMr) {
        micro_tile(a + k0 * lda + i0, lda, bp, bstride, kc, acc);
        double* ctile = c + j0 * ldc + i0;
        if (nr == kNr) {
          store_full_tile(ctile, ldc, acc);
        } else {
          store_edge_tile(ctile, ldc, acc, kMr, nr);
        }
      }
      if (m_main < m) {
        micro_tile(apack->data(), kMr, bp, bstride, kc, acc);
        store_edge_tile(c + j0 * ldc + m_main, ldc, acc, m - m_main, nr);
      }
    }
  }
}

// Blocked X * L^T = B: per kNb-wide column block, subtract the contribution
// of the already-solved columns with GEMM, then reference-solve the
// diagonal block.
void trsm_right_lower_transpose_blocked(const double* l, std::int64_t ldl,
                                        double* b, std::int64_t ldb,
                                        std::int64_t m, std::int64_t n) {
  for (std::int64_t j0 = 0; j0 < n; j0 += kNb) {
    const std::int64_t jb = std::min(kNb, n - j0);
    if (j0 > 0) {
      // B(:, j0:j0+jb) -= X(:, 0:j0) * L(j0:j0+jb, 0:j0)^T.
      gemm_minus_blocked(b, ldb, l + j0, ldl, b + j0 * ldb, ldb, m, jb, j0,
                         /*b_transposed=*/true);
    }
    trsm_right_lower_transpose_ref(l + j0 * ldl + j0, ldl, b + j0 * ldb, ldb,
                                   m, jb);
  }
}

// Blocked L^{-1} X: reference-solve each kNb-row diagonal block, then GEMM
// the update into the rows below it.
void trsm_left_unit_lower_blocked(const double* l, std::int64_t ldl,
                                  double* x, std::int64_t ldx, std::int64_t m,
                                  std::int64_t n) {
  for (std::int64_t i0 = 0; i0 < m; i0 += kNb) {
    const std::int64_t ib = std::min(kNb, m - i0);
    trsm_left_unit_lower_ref(l + i0 * ldl + i0, ldl, x + i0, ldx, ib, n);
    const std::int64_t rest = m - i0 - ib;
    if (rest > 0) {
      // X(i0+ib:m, :) -= L(i0+ib:m, i0:i0+ib) * X(i0:i0+ib, :).
      gemm_minus_blocked(l + i0 * ldl + i0 + ib, ldl, x + i0, ldx,
                         x + i0 + ib, ldx, rest, n, ib,
                         /*b_transposed=*/false);
    }
  }
}

// Blocked right-looking Cholesky: reference potrf on the kNb diagonal
// block, blocked TRSM on the panel below it, then a GEMM trailing update.
// The trailing update of each diagonal block goes through a scratch tile so
// the strictly upper triangle is never referenced (same contract as the
// reference kernel).
void potrf_lower_blocked(double* a, std::int64_t ld, std::int64_t n) {
  RAPID_CHECK(ld >= n && n >= 0, "potrf: bad dimensions");
  std::vector<double>*apack, *bpack, *tmp;
  thread_scratch(apack, bpack, tmp);
  for (std::int64_t j0 = 0; j0 < n; j0 += kNb) {
    const std::int64_t jb = std::min(kNb, n - j0);
    double* diag = a + j0 * ld + j0;
    potrf_lower_ref(diag, ld, jb);
    const std::int64_t below = n - j0 - jb;
    if (below <= 0) continue;
    double* panel = a + j0 * ld + j0 + jb;  // (n-j0-jb) x jb
    trsm_right_lower_transpose_blocked(diag, ld, panel, ld, below, jb);
    // Trailing update: A(cb:n, cb:cb+cw) -= P(cb-row:) * P(cb-row:)^T per
    // column block cb, split into the diagonal cw x cw tile (via scratch,
    // lower part only) and the full rectangle beneath it.
    for (std::int64_t cb = j0 + jb; cb < n; cb += kNb) {
      const std::int64_t cw = std::min(kNb, n - cb);
      const double* prow = a + j0 * ld + cb;  // P rows for this block
      tmp->assign(static_cast<std::size_t>(cw * cw), 0.0);
      gemm_minus_blocked(prow, ld, prow, ld, tmp->data(), cw, cw, cw, jb,
                         /*b_transposed=*/true);
      double* cdiag = a + cb * ld + cb;
      for (std::int64_t jj = 0; jj < cw; ++jj) {
        for (std::int64_t ii = jj; ii < cw; ++ii) {
          cdiag[jj * ld + ii] += (*tmp)[static_cast<std::size_t>(jj * cw + ii)];
        }
      }
      const std::int64_t sub = n - cb - cw;
      if (sub > 0) {
        gemm_minus_blocked(a + j0 * ld + cb + cw, ld, prow, ld,
                           a + cb * ld + cb + cw, ld, sub, cw, jb,
                           /*b_transposed=*/true);
      }
    }
  }
}

// Blocked LU panel: reference-factor kNb-wide sub-panels, swap their pivot
// rows across the rest of the panel, solve the U12 strip, GEMM the trailing
// sub-panel. Pivot encoding matches getrf_panel_ref (absolute panel rows).
void getrf_panel_blocked(double* a, std::int64_t ld, std::int64_t m,
                         std::int64_t w, std::int32_t* pivots) {
  RAPID_CHECK(m >= w && w >= 0, "getrf_panel: need m >= w");
  for (std::int64_t j0 = 0; j0 < w; j0 += kNb) {
    const std::int64_t wb = std::min(kNb, w - j0);
    getrf_panel_ref(a + j0 * ld + j0, ld, m - j0, wb, pivots + j0);
    // Rebase sub-panel pivots to absolute panel rows and apply the swaps to
    // the columns outside the sub-panel.
    for (std::int64_t jj = 0; jj < wb; ++jj) {
      const std::int64_t r1 = j0 + jj;
      const std::int64_t r2 = j0 + pivots[j0 + jj];
      pivots[j0 + jj] = static_cast<std::int32_t>(r2);
      if (r1 == r2) continue;
      for (std::int64_t c = 0; c < j0; ++c) {
        std::swap(a[c * ld + r1], a[c * ld + r2]);
      }
      for (std::int64_t c = j0 + wb; c < w; ++c) {
        std::swap(a[c * ld + r1], a[c * ld + r2]);
      }
    }
    const std::int64_t right = w - j0 - wb;
    if (right <= 0) continue;
    // U12 := L11^{-1} U12, then A22 -= L21 * U12.
    trsm_left_unit_lower_blocked(a + j0 * ld + j0, ld,
                                 a + (j0 + wb) * ld + j0, ld, wb, right);
    const std::int64_t below = m - j0 - wb;
    if (below > 0) {
      gemm_minus_blocked(a + j0 * ld + j0 + wb, ld, a + (j0 + wb) * ld + j0,
                         ld, a + (j0 + wb) * ld + j0 + wb, ld, below, right,
                         wb, /*b_transposed=*/false);
    }
  }
}

// Size heuristics for kAuto: below these, packing overhead beats the SIMD
// win and the reference loops are faster. n and k both need to clear the
// register-tile footprint with headroom: for skinny updates (n = k = 10,
// the tall trailing GEMM of a narrow-panel LU) the packed tiles are mostly
// fringe and the blocked path measures *slower* than the reference loops
// once m is a few hundred rows, while at n = k = 16 it wins at every m.
inline bool auto_gemm(std::int64_t m, std::int64_t n, std::int64_t k) {
  return m >= 16 && n >= 12 && k >= 12;
}

inline bool use_blocked(bool auto_ok) {
  switch (kernel_level()) {
    case KernelLevel::kRef: return false;
    case KernelLevel::kBlocked: return true;
    case KernelLevel::kAuto: break;
  }
  return auto_ok;
}

}  // namespace

bool kernels_vectorized() noexcept {
#if RAPID_HAVE_VEC
  return true;
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Dispatching entry points.
// ---------------------------------------------------------------------------

void potrf_lower(double* a, std::int64_t ld, std::int64_t n) {
  if (use_blocked(n >= 2 * kNb)) {
    potrf_lower_blocked(a, ld, n);
  } else {
    potrf_lower_ref(a, ld, n);
  }
}

void trsm_right_lower_transpose(const double* l, std::int64_t ldl, double* b,
                                std::int64_t ldb, std::int64_t m,
                                std::int64_t n) {
  if (use_blocked(n >= 2 * kNb && m >= 8)) {
    trsm_right_lower_transpose_blocked(l, ldl, b, ldb, m, n);
  } else {
    trsm_right_lower_transpose_ref(l, ldl, b, ldb, m, n);
  }
}

void trsm_left_unit_lower(const double* l, std::int64_t ldl, double* x,
                          std::int64_t ldx, std::int64_t m, std::int64_t n) {
  if (use_blocked(m >= 2 * kNb && n >= 4)) {
    trsm_left_unit_lower_blocked(l, ldl, x, ldx, m, n);
  } else {
    trsm_left_unit_lower_ref(l, ldl, x, ldx, m, n);
  }
}

void gemm_minus_abt(const double* a, std::int64_t lda, const double* b,
                    std::int64_t ldb, double* c, std::int64_t ldc,
                    std::int64_t m, std::int64_t n, std::int64_t k) {
  if (use_blocked(auto_gemm(m, n, k))) {
    gemm_minus_blocked(a, lda, b, ldb, c, ldc, m, n, k,
                       /*b_transposed=*/true);
  } else {
    gemm_minus_abt_ref(a, lda, b, ldb, c, ldc, m, n, k);
  }
}

void gemm_minus_ab(const double* a, std::int64_t lda, const double* b,
                   std::int64_t ldb, double* c, std::int64_t ldc,
                   std::int64_t m, std::int64_t n, std::int64_t k) {
  if (use_blocked(auto_gemm(m, n, k))) {
    gemm_minus_blocked(a, lda, b, ldb, c, ldc, m, n, k,
                       /*b_transposed=*/false);
  } else {
    gemm_minus_ab_ref(a, lda, b, ldb, c, ldc, m, n, k);
  }
}

void getrf_panel(double* a, std::int64_t ld, std::int64_t m, std::int64_t w,
                 std::int32_t* pivots) {
  if (use_blocked(w >= 2 * kNb && m >= 2 * kNb)) {
    getrf_panel_blocked(a, ld, m, w, pivots);
  } else {
    getrf_panel_ref(a, ld, m, w, pivots);
  }
}

void apply_pivots(double* a, std::int64_t ld, std::int64_t n,
                  std::int64_t row_offset,
                  std::span<const std::int32_t> pivots) {
  for (std::size_t j = 0; j < pivots.size(); ++j) {
    const std::int64_t r1 = row_offset + static_cast<std::int64_t>(j);
    const std::int64_t r2 = row_offset + pivots[j];
    if (r1 == r2) continue;
    for (std::int64_t c = 0; c < n; ++c) {
      std::swap(a[c * ld + r1], a[c * ld + r2]);
    }
  }
}

double flops_potrf(std::int64_t n) {
  return static_cast<double>(n) * n * n / 3.0;
}

double flops_trsm(std::int64_t m, std::int64_t n) {
  return static_cast<double>(m) * n * n;
}

double flops_gemm(std::int64_t m, std::int64_t n, std::int64_t k) {
  return 2.0 * static_cast<double>(m) * n * k;
}

double flops_getrf_panel(std::int64_t m, std::int64_t w) {
  return static_cast<double>(m) * w * w;
}

}  // namespace rapid::num
