#include "rapid/num/trisolve_app.hpp"

#include <cmath>
#include <cstring>

#include "rapid/num/kernels.hpp"
#include "rapid/num/reference.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/symbolic.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::num {

graph::DataId TriSolveApp::l_block(Index bi, Index bj) const {
  return lmap_[bi][bj];
}

TriSolveApp TriSolveApp::build(sparse::CscMatrix a, Index block_size,
                               int num_procs) {
  RAPID_CHECK(a.n_rows() == a.n_cols(), "triangular solve needs square SPD");
  RAPID_CHECK(num_procs > 0, "num_procs must be positive");
  TriSolveApp app;
  app.a_ = std::move(a);
  const Index n = app.a_.n_cols();
  app.layout_ = sparse::BlockLayout(n, block_size);
  const Index nb = app.layout_.num_blocks;

  // Reference factor and right-hand side (exact solution = ones).
  app.l_dense_ = dense_cholesky(app.a_.to_dense(), n);
  app.rhs_ = sparse::rhs_for_unit_solution(app.a_);

  const sparse::SymbolicFactor symbolic =
      sparse::symbolic_cholesky(app.a_.pattern);
  app.block_fill_ =
      sparse::project_to_blocks(symbolic.l_pattern, app.layout_, app.layout_);

  // Objects: solution segments (cyclic owners) and L blocks (placed with
  // their row segment).
  app.segment_.resize(static_cast<std::size_t>(nb));
  for (Index bi = 0; bi < nb; ++bi) {
    app.segment_[bi] = app.graph_.add_data(
        cat("y[", bi, "]"),
        static_cast<std::int64_t>(app.layout_.block_width(bi)) * 8,
        static_cast<graph::ProcId>(bi % num_procs));
  }
  app.lmap_.assign(static_cast<std::size_t>(nb),
                   std::vector<graph::DataId>(static_cast<std::size_t>(nb),
                                              graph::kInvalidData));
  for (Index bj = 0; bj < nb; ++bj) {
    for (Index e = app.block_fill_.col_ptr[bj];
         e < app.block_fill_.col_ptr[bj + 1]; ++e) {
      const Index bi = app.block_fill_.row_idx[e];
      const std::int64_t bytes =
          static_cast<std::int64_t>(app.layout_.block_width(bi)) *
          app.layout_.block_width(bj) * 8;
      app.lmap_[bi][bj] = app.graph_.add_data(
          cat("L[", bi, ",", bj, "]"), bytes,
          static_cast<graph::ProcId>(bi % num_procs));
    }
  }

  // Forward sweep: for each column block j, solve the diagonal then push
  // updates down. Updates into the same segment commute (group = segment).
  for (Index bj = 0; bj < nb; ++bj) {
    const Index w = app.layout_.block_width(bj);
    app.graph_.add_task(cat("FSOL(", bj, ")"),
                        {app.segment_[bj], app.lmap_[bj][bj]},
                        {app.segment_[bj]},
                        flops_trsm(1, w));
    app.task_info_.push_back(
        TaskInfo{TaskInfo::Kind::kForwardSolve, bj, bj});
    for (Index e = app.block_fill_.col_ptr[bj];
         e < app.block_fill_.col_ptr[bj + 1]; ++e) {
      const Index bi = app.block_fill_.row_idx[e];
      if (bi == bj) continue;
      app.graph_.add_task(
          cat("FUPD(", bi, ",", bj, ")"),
          {app.segment_[bi], app.segment_[bj], app.lmap_[bi][bj]},
          {app.segment_[bi]},
          flops_gemm(app.layout_.block_width(bi), 1, w),
          /*commute_group=*/app.segment_[bi]);
      app.task_info_.push_back(
          TaskInfo{TaskInfo::Kind::kForwardUpdate, bi, bj});
    }
  }
  // Backward sweep: descending columns; x_j gathers contributions from all
  // segments below through L(:,j)ᵀ, then solves the transposed diagonal.
  for (Index bj = nb - 1; bj >= 0; --bj) {
    const Index w = app.layout_.block_width(bj);
    for (Index e = app.block_fill_.col_ptr[bj];
         e < app.block_fill_.col_ptr[bj + 1]; ++e) {
      const Index bi = app.block_fill_.row_idx[e];
      if (bi == bj) continue;
      app.graph_.add_task(
          cat("BUPD(", bj, ",", bi, ")"),
          {app.segment_[bj], app.segment_[bi], app.lmap_[bi][bj]},
          {app.segment_[bj]},
          flops_gemm(w, 1, app.layout_.block_width(bi)),
          /*commute_group=*/app.segment_[bj]);
      app.task_info_.push_back(
          TaskInfo{TaskInfo::Kind::kBackwardUpdate, bi, bj});
    }
    app.graph_.add_task(cat("BSOL(", bj, ")"),
                        {app.segment_[bj], app.lmap_[bj][bj]},
                        {app.segment_[bj]},
                        flops_trsm(1, w));
    app.task_info_.push_back(
        TaskInfo{TaskInfo::Kind::kBackwardSolve, bj, bj});
  }
  app.graph_.finalize();
  return app;
}

rt::ObjectInit TriSolveApp::make_init() const {
  return [this](graph::DataId d, std::span<std::byte> buffer) {
    const Index n = layout_.n;
    auto* out = reinterpret_cast<double*>(buffer.data());
    // Solution segments start as the right-hand side.
    for (Index bi = 0; bi < layout_.num_blocks; ++bi) {
      if (segment_[bi] == d) {
        const Index r0 = layout_.block_begin(bi);
        for (Index r = 0; r < layout_.block_width(bi); ++r) {
          out[r] = rhs_[r0 + r];
        }
        return;
      }
    }
    // L blocks copy from the reference factor.
    for (Index bi = 0; bi < layout_.num_blocks; ++bi) {
      for (Index bj = 0; bj <= bi; ++bj) {
        if (lmap_[bi][bj] != d) continue;
        const Index r0 = layout_.block_begin(bi);
        const Index c0 = layout_.block_begin(bj);
        const Index h = layout_.block_width(bi);
        for (Index c = 0; c < layout_.block_width(bj); ++c) {
          for (Index r = 0; r < h; ++r) {
            out[static_cast<std::size_t>(c) * h + r] =
                l_dense_[static_cast<std::size_t>(c0 + c) * n + (r0 + r)];
          }
        }
        return;
      }
    }
    RAPID_FAIL(cat("unknown data object ", d));
  };
}

rt::TaskBody TriSolveApp::make_body() const {
  return [this](graph::TaskId t, rt::ObjectResolver& resolver) {
    const TaskInfo& info = task_info_[t];
    const Index hi = layout_.block_width(info.i);
    const Index hj = layout_.block_width(info.j);
    switch (info.kind) {
      case TaskInfo::Kind::kForwardSolve: {
        // y_j := L_jj^{-1} y_j (forward substitution, non-unit diagonal).
        auto ld = resolver.read(l_block(info.j, info.j));
        auto ys = resolver.write(segment_[info.j]);
        const auto* l = reinterpret_cast<const double*>(ld.data());
        auto* y = reinterpret_cast<double*>(ys.data());
        for (Index r = 0; r < hj; ++r) {
          double v = y[r];
          for (Index c = 0; c < r; ++c) v -= l[c * hj + r] * y[c];
          y[r] = v / l[r * hj + r];
        }
        break;
      }
      case TaskInfo::Kind::kForwardUpdate: {
        // y_i -= L_ij * y_j.
        auto ld = resolver.read(l_block(info.i, info.j));
        auto yj = resolver.read(segment_[info.j]);
        auto yi = resolver.write(segment_[info.i]);
        gemm_minus_ab(reinterpret_cast<const double*>(ld.data()), hi,
                      reinterpret_cast<const double*>(yj.data()), hj,
                      reinterpret_cast<double*>(yi.data()), hi, hi, 1, hj);
        break;
      }
      case TaskInfo::Kind::kBackwardSolve: {
        // x_j := L_jj^{-T} x_j (backward substitution).
        auto ld = resolver.read(l_block(info.j, info.j));
        auto xs = resolver.write(segment_[info.j]);
        const auto* l = reinterpret_cast<const double*>(ld.data());
        auto* x = reinterpret_cast<double*>(xs.data());
        for (Index r = hj - 1; r >= 0; --r) {
          double v = x[r];
          for (Index c = r + 1; c < hj; ++c) v -= l[r * hj + c] * x[c];
          x[r] = v / l[r * hj + r];
        }
        break;
      }
      case TaskInfo::Kind::kBackwardUpdate: {
        // x_j -= L_ijᵀ * x_i : x_j[c] -= sum_r L_ij[r,c] * x_i[r].
        auto ld = resolver.read(l_block(info.i, info.j));
        auto xi = resolver.read(segment_[info.i]);
        auto xj = resolver.write(segment_[info.j]);
        const auto* l = reinterpret_cast<const double*>(ld.data());
        const auto* vi = reinterpret_cast<const double*>(xi.data());
        auto* vj = reinterpret_cast<double*>(xj.data());
        for (Index c = 0; c < hj; ++c) {
          double acc = 0.0;
          for (Index r = 0; r < hi; ++r) acc += l[c * hi + r] * vi[r];
          vj[c] -= acc;
        }
        break;
      }
    }
  };
}

std::vector<double> TriSolveApp::extract_solution(
    const rt::ThreadedExecutor& exec) const {
  std::vector<double> x(static_cast<std::size_t>(layout_.n), 0.0);
  for (Index bi = 0; bi < layout_.num_blocks; ++bi) {
    const std::vector<std::byte> bytes = exec.read_object(segment_[bi]);
    const auto* v = reinterpret_cast<const double*>(bytes.data());
    const Index r0 = layout_.block_begin(bi);
    for (Index r = 0; r < layout_.block_width(bi); ++r) {
      x[r0 + r] = v[r];
    }
  }
  return x;
}

double TriSolveApp::solution_error(const std::vector<double>& x) {
  double worst = 0.0;
  for (double xi : x) worst = std::max(worst, std::abs(xi - 1.0));
  return worst;
}

}  // namespace rapid::num
