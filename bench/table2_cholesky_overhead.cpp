// Table 2: effectiveness of the run-time execution scheme for sparse
// Cholesky — parallel-time increase and average #MAPs under 100/75/50/40 %
// of TOT (the no-recycling footprint), RCP ordering, p = 2..32. The
// comparison base is the same RCP schedule with 100 % memory and no memory
// management (original RAPID).
//
// Paper (BCSSTK15/24 average):
//   p    100%PT  75%PT  75%MAP  50%PT  50%MAP  40%PT
//   2    3.8%    7.7%   3.75    inf    inf     inf
//   4    12.0%   18.5%  2.00    33.6%  7.38    inf
//   8    12.4%   25.3%  2.00    33.7%  3.44    51.4%
//   16   17.6%   39.0%  2.00    45.7%  2.97    56.8%
//   32   22.0%   42.1%  1.98    61.3%  2.35    65.1%
#include <cstdio>

#include "common.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

int main(int argc, char** argv) {
  Flags flags;
  if (bench::parse_common_flags(flags, argc, argv)) return 0;
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const auto procs = flags.get_int_list("procs");

  bench::print_header(
      "Table 2: active memory management overhead, sparse Cholesky (RCP)",
      num::bcsstk24_like(scale).name + " + " + num::bcsstk15_like(scale).name +
          " (averaged)",
      "PT increase vs the no-management baseline; 'inf' = non-executable "
      "(paper's infinity entries)");

  TextTable table({"p", "100% PT", "75% PT", "75% #MAP", "50% PT",
                   "50% #MAP", "40% PT", "40% #MAP"});
  for (const auto p : procs) {
    struct Acc {
      double pt_sum = 0;
      double map_sum = 0;
      int executable = 0;
      int total = 0;
    };
    Acc acc[4];  // 100, 75, 50, 40 %
    const double fractions[] = {1.0, 0.75, 0.5, 0.4};
    for (const num::Workload& w :
         {num::bcsstk24_like(scale), num::bcsstk15_like(scale)}) {
      const bench::Instance inst =
          bench::make_cholesky_instance(w, block, static_cast<int>(p));
      const auto schedule =
          bench::make_schedule(inst, bench::OrderingKind::kRcp);
      const auto tot = bench::tot_mem(inst, schedule);
      const bench::SimResult base = bench::run_baseline(inst, schedule);
      for (int f = 0; f < 4; ++f) {
        const auto capacity =
            static_cast<std::int64_t>(static_cast<double>(tot) * fractions[f]);
        const bench::SimResult r = bench::run_sim(inst, schedule, capacity);
        ++acc[f].total;
        if (r.executable) {
          ++acc[f].executable;
          acc[f].pt_sum += r.parallel_time_us / base.parallel_time_us - 1.0;
          acc[f].map_sum += r.avg_maps;
        }
      }
    }
    auto pt_cell = [&](int f) {
      if (acc[f].executable < acc[f].total) return std::string("inf");
      return fixed(acc[f].pt_sum / acc[f].executable * 100.0, 1) + "%";
    };
    auto map_cell = [&](int f) {
      if (acc[f].executable < acc[f].total) return std::string("inf");
      return fixed(acc[f].map_sum / acc[f].executable, 2);
    };
    table.add_row({std::to_string(p), pt_cell(0), pt_cell(1), map_cell(1),
                   pt_cell(2), map_cell(2), pt_cell(3), map_cell(3)});
  }
  bench::emit_table(flags, "table2_cholesky_overhead", table);
  std::printf(
      "\nexpected shape: degradation grows as memory shrinks and as p grows;"
      "\nsmall p + small memory is non-executable while large p stays "
      "executable\n(more volatile objects per processor give the MAPs more "
      "freedom).\n");
  return 0;
}
