// google-benchmark micro suite for the inspector-stage machinery: graph
// construction, the three ordering heuristics, liveness analysis and the
// arena allocator. These are the run-time preprocessing costs the paper's
// inspector/executor split amortizes over iterations.
#include <benchmark/benchmark.h>

#include "rapid/graph/dcg.hpp"
#include "rapid/mem/arena.hpp"
#include "rapid/num/cholesky_app.hpp"
#include "rapid/num/workloads.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/rng.hpp"

namespace {

using namespace rapid;

constexpr double kScale = 0.3;
constexpr sparse::Index kBlock = 12;
constexpr int kProcs = 8;

const num::CholeskyApp& shared_app() {
  static const num::CholeskyApp app = num::CholeskyApp::build(
      num::bcsstk24_like(kScale).matrix, kBlock, kProcs);
  return app;
}

void BM_BuildCholeskyTaskGraph(benchmark::State& state) {
  const auto workload = num::bcsstk24_like(kScale);
  for (auto _ : state) {
    auto matrix = workload.matrix;
    auto app = num::CholeskyApp::build(std::move(matrix), kBlock, kProcs);
    benchmark::DoNotOptimize(app.graph().num_tasks());
  }
  state.counters["tasks"] =
      static_cast<double>(shared_app().graph().num_tasks());
}
BENCHMARK(BM_BuildCholeskyTaskGraph);

void BM_ScheduleRcp(benchmark::State& state) {
  const auto& app = shared_app();
  const auto assignment = sched::owner_compute_tasks(app.graph(), kProcs);
  const auto params = machine::MachineParams::cray_t3d(kProcs);
  for (auto _ : state) {
    auto s = sched::schedule_rcp(app.graph(), assignment, kProcs, params);
    benchmark::DoNotOptimize(s.predicted_makespan);
  }
}
BENCHMARK(BM_ScheduleRcp);

void BM_ScheduleMpo(benchmark::State& state) {
  const auto& app = shared_app();
  const auto assignment = sched::owner_compute_tasks(app.graph(), kProcs);
  const auto params = machine::MachineParams::cray_t3d(kProcs);
  for (auto _ : state) {
    auto s = sched::schedule_mpo(app.graph(), assignment, kProcs, params);
    benchmark::DoNotOptimize(s.predicted_makespan);
  }
}
BENCHMARK(BM_ScheduleMpo);

void BM_ScheduleDts(benchmark::State& state) {
  const auto& app = shared_app();
  const auto assignment = sched::owner_compute_tasks(app.graph(), kProcs);
  const auto params = machine::MachineParams::cray_t3d(kProcs);
  for (auto _ : state) {
    auto s = sched::schedule_dts(app.graph(), assignment, kProcs, params);
    benchmark::DoNotOptimize(s.predicted_makespan);
  }
}
BENCHMARK(BM_ScheduleDts);

void BM_SliceDecomposition(benchmark::State& state) {
  const auto& app = shared_app();
  for (auto _ : state) {
    auto slices = graph::compute_slices(app.graph());
    benchmark::DoNotOptimize(slices.num_slices());
  }
}
BENCHMARK(BM_SliceDecomposition);

void BM_LivenessAnalysis(benchmark::State& state) {
  const auto& app = shared_app();
  const auto assignment = sched::owner_compute_tasks(app.graph(), kProcs);
  const auto params = machine::MachineParams::cray_t3d(kProcs);
  const auto schedule =
      sched::schedule_rcp(app.graph(), assignment, kProcs, params);
  for (auto _ : state) {
    auto liveness = sched::analyze_liveness(app.graph(), schedule);
    benchmark::DoNotOptimize(liveness.min_mem());
  }
}
BENCHMARK(BM_LivenessAnalysis);

void BM_ArenaChurn(benchmark::State& state) {
  // The allocator pattern a MAP produces: batches of frees then allocates.
  Rng rng(7);
  for (auto _ : state) {
    mem::Arena arena(1 << 20);
    std::vector<mem::Offset> live;
    for (int round = 0; round < 64; ++round) {
      for (int i = 0; i < 16 && !live.empty(); i += 2) {
        const auto idx =
            static_cast<std::size_t>(rng.next_below(live.size()));
        arena.deallocate(live[idx]);
        live[idx] = live.back();
        live.pop_back();
      }
      for (int i = 0; i < 16; ++i) {
        const auto off =
            arena.allocate(static_cast<std::int64_t>(64 + rng.next_below(4096)));
        if (off != mem::kNullOffset) live.push_back(off);
      }
    }
    benchmark::DoNotOptimize(arena.in_use());
  }
}
BENCHMARK(BM_ArenaChurn);

}  // namespace
