// Table 3: effectiveness of the run-time execution scheme for sparse LU
// with partial pivoting ("goodwin" stand-in), RCP ordering, p = 2..32.
//
// Paper:
//   p    100%PT  75%PT  75%MAP  50%PT  50%MAP  40%PT
//   2    0%      inf    inf     inf    inf     inf
//   4    0.4%    15.5%  3.50    inf    inf     inf
//   8    1%      11.1%  2.00    37.5%  5.63    inf
//   16   1.4%    18.3%  2.00    18.1%  2.94    32.2%
//   32   2.1%    13.8%  1.72    15.6%  2.38    16.7%
#include <cstdio>

#include "common.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

int main(int argc, char** argv) {
  Flags flags;
  if (bench::parse_common_flags(flags, argc, argv)) return 0;
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const auto procs = flags.get_int_list("procs");

  const num::Workload workload = num::goodwin_like(scale);
  bench::print_header(
      "Table 3: active memory management overhead, sparse LU with partial "
      "pivoting (RCP)",
      workload.name,
      "1-D column-block mapping; PT increase vs the no-management baseline");

  TextTable table({"p", "100% PT", "75% PT", "75% #MAP", "50% PT",
                   "50% #MAP", "40% PT", "40% #MAP"});
  const double fractions[] = {1.0, 0.75, 0.5, 0.4};
  for (const auto p : procs) {
    const bench::Instance inst =
        bench::make_lu_instance(workload, block, static_cast<int>(p));
    const auto schedule = bench::make_schedule(inst, bench::OrderingKind::kRcp);
    const auto tot = bench::tot_mem(inst, schedule);
    const bench::SimResult base = bench::run_baseline(inst, schedule);
    std::vector<std::string> row = {std::to_string(p)};
    for (int f = 0; f < 4; ++f) {
      const auto capacity =
          static_cast<std::int64_t>(static_cast<double>(tot) * fractions[f]);
      const bench::SimResult r = bench::run_sim(inst, schedule, capacity);
      row.push_back(bench::pt_increase_cell(base, r));
      if (f > 0) row.push_back(bench::maps_cell(r));
    }
    table.add_row(std::move(row));
  }
  bench::emit_table(flags, "table3_lu_overhead", table);
  std::printf(
      "\nexpected shape: more 'inf' cells than Cholesky (1-D mapping makes "
      "fewer,\nlarger objects, so less allocation freedom) and lower PT "
      "overhead at large p\n(coarser tasks are less sensitive to management "
      "overhead).\n");
  return 0;
}
