// Ablation: address buffering (paper §3.2). The paper chooses a single
// address-package slot per processor pair — "we will not support address
// buffering in order to avoid the overhead of buffer managing" — accepting
// that a MAP can block on a slow consumer. This bench re-runs the Cholesky
// overhead experiment with 1, 2, 4 and effectively-unbounded slots to
// measure what that design choice costs (and show it costs little when RA
// is serviced at every state transition, which is the paper's protocol).
#include <cstdio>

#include "common.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

int main(int argc, char** argv) {
  Flags flags;
  if (bench::parse_common_flags(flags, argc, argv)) return 0;
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const auto procs = flags.get_int_list("procs");

  const num::Workload workload = num::bcsstk24_like(scale);
  bench::print_header(
      "Ablation: address-package buffering (mailbox slots per processor "
      "pair)",
      workload.name,
      "parallel time at 50% of TOT (RCP), relative to the 1-slot design the "
      "paper uses");

  TextTable table({"p", "1 slot (paper)", "2 slots", "4 slots", "unbounded"});
  for (const auto p : procs) {
    const bench::Instance inst =
        bench::make_cholesky_instance(workload, block, static_cast<int>(p));
    const auto schedule = bench::make_schedule(inst, bench::OrderingKind::kRcp);
    const auto capacity = static_cast<std::int64_t>(
        static_cast<double>(bench::tot_mem(inst, schedule)) * 0.5);
    const rt::RunPlan plan = rt::build_run_plan(*inst.graph, schedule);
    double base_time = 0.0;
    std::vector<std::string> row = {std::to_string(p)};
    for (std::int32_t slots : {1, 2, 4, 1 << 20}) {
      rt::RunConfig config;
      config.params = inst.params;
      config.capacity_per_proc = capacity;
      config.mailbox_slots = slots;
      const rt::RunReport r = rt::simulate(plan, config);
      if (!r.executable) {
        row.push_back("inf");
        continue;
      }
      if (slots == 1) {
        base_time = r.parallel_time_us;
        row.push_back(fixed(r.parallel_time_us / 1e3, 1) + " ms");
      } else {
        row.push_back(pct(r.parallel_time_us / base_time - 1.0));
      }
    }
    table.add_row(std::move(row));
  }
  bench::emit_table(flags, "ablation_mailbox", table);
  std::printf(
      "\nexpected shape: near-zero differences — because every blocking "
      "state services RA,\nsingle-slot mailboxes rarely stall, vindicating "
      "the paper's no-buffering choice.\n");
  return 0;
}
