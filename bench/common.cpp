#include "common.hpp"

#include <algorithm>
#include <cstdio>

#include "rapid/rt/sim_executor.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/str.hpp"
#include "rapid/verify/auditor.hpp"

namespace rapid::bench {

const char* ordering_name(OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kRcp:
      return "RCP";
    case OrderingKind::kMpo:
      return "MPO";
    case OrderingKind::kDts:
      return "DTS";
    case OrderingKind::kDtsMerged:
      return "DTS+merge";
  }
  return "?";
}

Instance make_cholesky_instance(const num::Workload& workload,
                                sparse::Index block, int procs) {
  Instance inst;
  inst.name = workload.name;
  inst.num_procs = procs;
  auto matrix = workload.matrix;
  inst.cholesky = std::make_shared<num::CholeskyApp>(
      num::CholeskyApp::build(std::move(matrix), block, procs));
  inst.graph = &inst.cholesky->mutable_graph();
  inst.assignment = sched::owner_compute_tasks(*inst.graph, procs);
  inst.params = machine::MachineParams::cray_t3d(procs);
  return inst;
}

Instance make_lu_instance(const num::Workload& workload, sparse::Index block,
                          int procs) {
  Instance inst;
  inst.name = workload.name;
  inst.num_procs = procs;
  auto matrix = workload.matrix;
  inst.lu = std::make_shared<num::LuApp>(
      num::LuApp::build(std::move(matrix), block, procs));
  inst.graph = &inst.lu->mutable_graph();
  inst.assignment = sched::owner_compute_tasks(*inst.graph, procs);
  inst.params = machine::MachineParams::cray_t3d(procs);
  return inst;
}

sched::Schedule make_schedule(const Instance& instance, OrderingKind kind,
                              std::optional<std::int64_t> volatile_budget) {
  switch (kind) {
    case OrderingKind::kRcp:
      return sched::schedule_rcp(*instance.graph, instance.assignment,
                                 instance.num_procs, instance.params);
    case OrderingKind::kMpo:
      return sched::schedule_mpo(*instance.graph, instance.assignment,
                                 instance.num_procs, instance.params);
    case OrderingKind::kDts:
      return sched::schedule_dts(*instance.graph, instance.assignment,
                                 instance.num_procs, instance.params);
    case OrderingKind::kDtsMerged:
      RAPID_CHECK(volatile_budget.has_value(),
                  "DTS+merge needs a volatile budget");
      return sched::schedule_dts(*instance.graph, instance.assignment,
                                 instance.num_procs, instance.params,
                                 volatile_budget);
  }
  RAPID_FAIL("unreachable");
}

SimResult run_sim(const Instance& instance, const sched::Schedule& schedule,
                  std::int64_t capacity, bool active_memory) {
  const rt::RunPlan plan = rt::build_run_plan(*instance.graph, schedule);
  // Auditor pre-check: a table entry is only trustworthy if the plan obeys
  // the Theorem 1 preconditions. Capacity findings are deliberately not
  // checked here — infeasible capacities are what the sweeps measure (the
  // "∞" cells), and the simulator reports them via RunReport::executable.
  {
    verify::AuditOptions audit_options;
    audit_options.capacity_per_proc = 0;
    const verify::AuditReport audit =
        verify::audit_plan(*instance.graph, schedule, plan, audit_options);
    RAPID_CHECK(audit.clean(), audit.to_string());
  }
  rt::RunConfig config;
  config.params = instance.params;
  config.capacity_per_proc = capacity;
  config.active_memory = active_memory;
  const rt::RunReport report = rt::simulate(plan, config);
  SimResult out;
  out.executable = report.executable;
  out.parallel_time_us = report.parallel_time_us;
  out.avg_maps = report.avg_maps();
  out.peak_bytes = report.peak_bytes();
  return out;
}

SimResult run_baseline(const Instance& instance,
                       const sched::Schedule& schedule) {
  return run_sim(instance, schedule, tot_mem(instance, schedule),
                 /*active_memory=*/false);
}

std::int64_t tot_mem(const Instance& instance,
                     const sched::Schedule& schedule) {
  return sched::analyze_liveness(*instance.graph, schedule).tot_mem();
}

std::int64_t min_mem(const Instance& instance,
                     const sched::Schedule& schedule) {
  return sched::analyze_liveness(*instance.graph, schedule).min_mem();
}

std::int64_t max_permanent_bytes(const Instance& instance,
                                 const sched::Schedule& schedule) {
  const auto liveness = sched::analyze_liveness(*instance.graph, schedule);
  std::int64_t worst = 0;
  for (const auto& p : liveness.procs) {
    worst = std::max(worst, p.permanent_bytes);
  }
  return worst;
}

std::string pt_increase_cell(const SimResult& base, const SimResult& run) {
  if (!run.executable) return "inf";
  const double ratio = run.parallel_time_us / base.parallel_time_us - 1.0;
  return fixed(ratio * 100.0, 1) + "%";
}

std::string maps_cell(const SimResult& run) {
  if (!run.executable) return "inf";
  return fixed(run.avg_maps, 2);
}

std::string compare_cell(const SimResult& a, const SimResult& b) {
  if (!a.executable && !b.executable) return "-";
  if (!a.executable) return "*";
  if (!b.executable) return "(A only)";
  const double ratio = b.parallel_time_us / a.parallel_time_us - 1.0;
  return fixed(ratio * 100.0, 1) + "%";
}

bool parse_common_flags(Flags& flags, int argc, const char* const* argv) {
  flags.define("scale", "1.0",
               "linear workload scale in (0,1]; 1.0 reproduces the paper's "
               "problem sizes (slower)");
  flags.define("block", "24", "block size for the 2-D/1-D partitions");
  flags.define("procs", "2,4,8,16,32", "processor counts to sweep");
  flags.define("json", "",
               "also write machine-readable results to this path");
  flags.parse(argc, argv);
  return flags.help_requested();
}

JsonValue table_to_json(const TextTable& table) {
  JsonValue rows = JsonValue::array();
  for (const auto& row : table.rows()) {
    JsonValue obj = JsonValue::object();
    for (std::size_t c = 0; c < row.size(); ++c) {
      obj[table.header()[c]] = row[c];
    }
    rows.push_back(std::move(obj));
  }
  return rows;
}

bool write_json_file(const Flags& flags, const JsonValue& doc) {
  const std::string path = flags.get("json");
  if (path.empty()) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  RAPID_CHECK(f != nullptr, cat("cannot open --json path ", path));
  const std::string text = doc.dump();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("\njson results written to %s\n", path.c_str());
  return true;
}

void emit_table(const Flags& flags, const std::string& artifact,
                const TextTable& table) {
  std::fputs(table.render().c_str(), stdout);
  JsonValue doc = JsonValue::object();
  doc["artifact"] = artifact;
  doc["scale"] = flags.get_double("scale");
  doc["block"] = flags.get_int("block");
  doc["rows"] = table_to_json(table);
  write_json_file(flags, doc);
}

void print_header(const std::string& artifact, const std::string& workload,
                  const std::string& notes) {
  std::printf("== %s ==\n", artifact.c_str());
  std::printf("workload: %s\n", workload.c_str());
  if (!notes.empty()) std::printf("%s\n", notes.c_str());
  std::printf("\n");
}

}  // namespace rapid::bench
