// Table 8: solving a previously-unsolvable problem — sparse LU with partial
// pivoting on the largest instance (BCSSTK33 stand-in pattern), where the
// no-recycling baseline exceeds the per-node memory but active memory
// management executes. Reports PT, average #MAPs, and model MFLOPS on
// 16/32/64 processors.
//
// Paper (BCSSTK33, 6080 columns, 9.49 M nonzeros):
//   p    PT(s)   #MAPs   MFLOPS
//   16   41.8    5.63    353.1
//   32   25.9    4.09    569.2
//   64   23.3    3.78    634.0
#include <cstdio>

#include "common.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("scale", "1.0", "linear workload scale in (0,1]");
  flags.define("block", "24", "column-block width");
  flags.define("procs", "16,32,64", "processor counts");
  flags.define(
      "capacity_fraction", "0.55",
      "per-node capacity as a fraction of the p=16 no-recycling footprint "
      "(chosen so the baseline is non-executable, as in the paper)");
  flags.parse(argc, argv);
  if (flags.help_requested()) return 0;
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const auto procs = flags.get_int_list("procs");
  const double cap_fraction = flags.get_double("capacity_fraction");

  // An unsymmetric instance on the BCSSTK33-like (largest) pattern scale.
  const num::Workload workload = num::goodwin_like(scale);
  bench::print_header(
      "Table 8: large sparse LU with partial pivoting under a hard memory "
      "cap",
      workload.name,
      "capacity per node fixed across p; baseline (no recycling) must not "
      "fit at the smallest p");

  // Fix the capacity from the smallest processor count's footprint.
  std::int64_t capacity = 0;
  {
    const bench::Instance inst = bench::make_lu_instance(
        workload, block, static_cast<int>(procs.front()));
    const auto rcp = bench::make_schedule(inst, bench::OrderingKind::kRcp);
    capacity = static_cast<std::int64_t>(
        static_cast<double>(bench::tot_mem(inst, rcp)) * cap_fraction);
  }
  std::printf("fixed per-node capacity: %s\n\n",
              human_bytes(static_cast<double>(capacity)).c_str());

  TextTable table(
      {"p", "baseline", "PT (ms)", "#MAPs", "MFLOPS", "paper MFLOPS"});
  const double paper_mflops[] = {353.1, 569.2, 634.0};
  std::size_t row = 0;
  for (const auto p : procs) {
    const bench::Instance inst =
        bench::make_lu_instance(workload, block, static_cast<int>(p));
    const auto rcp = bench::make_schedule(inst, bench::OrderingKind::kRcp);
    const bench::SimResult no_recycle =
        bench::run_sim(inst, rcp, capacity, /*active_memory=*/false);
    const bench::SimResult active = bench::run_sim(inst, rcp, capacity);
    const double flops = inst.graph->total_flops();
    std::string pt = "inf", maps = "inf", mflops = "-";
    if (active.executable) {
      pt = fixed(active.parallel_time_us / 1e3, 1);
      maps = fixed(active.avg_maps, 2);
      mflops = fixed(flops / active.parallel_time_us, 1);
    }
    table.add_row({std::to_string(p),
                   no_recycle.executable ? "fits" : "does NOT fit", pt, maps,
                   mflops,
                   row < 3 ? fixed(paper_mflops[row], 1) : std::string("-")});
    ++row;
  }
  bench::emit_table(flags, "table8_large_lu", table);
  std::printf(
      "\nexpected shape: the no-recycling baseline does not fit (the paper's "
      "'previously\nunsolvable' situation) while active memory management "
      "executes; MFLOPS grow and\n#MAPs shrink with p.\n");
  return 0;
}
