// Shared harness for the table/figure reproduction benches: builds the two
// factorization workloads, runs schedules through the simulator at capacity
// fractions of the no-recycling footprint TOT (exactly the paper's §5.1
// methodology), and renders paper-vs-measured tables.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rapid/machine/params.hpp"
#include "rapid/num/cholesky_app.hpp"
#include "rapid/num/lu_app.hpp"
#include "rapid/num/workloads.hpp"
#include "rapid/rt/report.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/schedule.hpp"
#include "rapid/support/flags.hpp"
#include "rapid/support/json.hpp"
#include "rapid/support/table.hpp"

namespace rapid::bench {

enum class OrderingKind { kRcp, kMpo, kDts, kDtsMerged };

const char* ordering_name(OrderingKind kind);

/// One prepared problem instance on p processors.
struct Instance {
  std::string name;
  int num_procs = 0;
  graph::TaskGraph* graph = nullptr;  // owned by the app variant below
  std::shared_ptr<num::CholeskyApp> cholesky;
  std::shared_ptr<num::LuApp> lu;
  std::vector<graph::ProcId> assignment;
  machine::MachineParams params;

  std::int64_t sequential_space() const { return graph->sequential_space(); }
};

/// Builds the Cholesky instance (2-D block mapping) for a workload.
Instance make_cholesky_instance(const num::Workload& workload,
                                sparse::Index block, int procs);

/// Builds the LU instance (1-D column-block mapping) for a workload.
Instance make_lu_instance(const num::Workload& workload, sparse::Index block,
                          int procs);

/// Orders the instance's tasks. For kDtsMerged, volatile_budget must be the
/// per-processor budget available to volatiles (capacity − max permanent).
sched::Schedule make_schedule(const Instance& instance, OrderingKind kind,
                              std::optional<std::int64_t> volatile_budget = {});

struct SimResult {
  bool executable = false;
  double parallel_time_us = 0.0;
  double avg_maps = 0.0;
  std::int64_t peak_bytes = 0;
};

/// Simulates the schedule under `capacity` bytes per processor.
SimResult run_sim(const Instance& instance, const sched::Schedule& schedule,
                  std::int64_t capacity, bool active_memory = true);

/// The paper's comparison base: the same schedule with all volatile space
/// preallocated and no memory-management overhead (original RAPID).
SimResult run_baseline(const Instance& instance,
                       const sched::Schedule& schedule);

/// TOT for a schedule: the no-recycling per-processor footprint (§5.1).
std::int64_t tot_mem(const Instance& instance,
                     const sched::Schedule& schedule);
std::int64_t min_mem(const Instance& instance,
                     const sched::Schedule& schedule);
std::int64_t max_permanent_bytes(const Instance& instance,
                                 const sched::Schedule& schedule);

/// Formats "x.x%" / "∞" cells like the paper's tables.
std::string pt_increase_cell(const SimResult& base, const SimResult& run);
std::string maps_cell(const SimResult& run);
/// PT_b / PT_a − 1 as a percentage; "*" when only b runs; "-" when neither.
std::string compare_cell(const SimResult& a, const SimResult& b);

/// Common flags for the table benches (including --json); returns true if
/// --help was printed.
bool parse_common_flags(Flags& flags, int argc, const char* const* argv);

/// Prints a standard bench header naming the paper artifact reproduced.
void print_header(const std::string& artifact, const std::string& workload,
                  const std::string& notes);

/// Converts a table to an array of one JSON object per row, keyed by the
/// header cells.
JsonValue table_to_json(const TextTable& table);

/// Writes `doc` to the path given by --json; no-op (returns false) when the
/// flag is empty. Prints the destination on success.
bool write_json_file(const Flags& flags, const JsonValue& doc);

/// Prints the table to stdout and, when --json=<path> was given, writes
/// {"artifact": ..., "rows": [...]} to <path>. The standard tail call of
/// every table/figure bench.
void emit_table(const Flags& flags, const std::string& artifact,
                const TextTable& table);

}  // namespace rapid::bench
