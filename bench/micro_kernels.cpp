// Micro suite for the dense block kernels (the task bodies of the
// factorization workloads): GFLOP/s per kernel per block size, one row for
// the naive reference loops (*_ref) and one for the register-blocked SIMD
// path, so the dispatch thresholds in num/dispatch.hpp stay justified by
// data. Emits BENCH_kernels.json via --json like the table benches.
//
// Destructive kernels (potrf/trsm/getrf) re-copy their input every
// iteration; the copy cost is included identically in both rows, so the
// naive-vs-blocked ratio is still apples to apples.
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "rapid/num/dispatch.hpp"
#include "rapid/num/kernels.hpp"
#include "rapid/support/flags.hpp"
#include "rapid/support/json.hpp"
#include "rapid/support/rng.hpp"
#include "rapid/support/str.hpp"
#include "rapid/support/table.hpp"

namespace {

using namespace rapid;

std::vector<double> random_vec(std::int64_t len, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<std::size_t>(len));
  for (auto& x : v) x = rng.next_double(-1.0, 1.0);
  return v;
}

std::vector<double> random_spd(std::int64_t n, std::uint64_t seed) {
  auto a = random_vec(n * n, seed);
  // A := (A + A^T)/2 + n·I keeps it SPD without an O(n^3) product.
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < j; ++i) {
      const double avg = 0.5 * (a[j * n + i] + a[i * n + j]);
      a[j * n + i] = a[i * n + j] = avg;
    }
    a[j * n + j] = static_cast<double>(n) + 1.0;
  }
  return a;
}

struct Measurement {
  double ms = 0.0;      // best per-iteration wall time
  double gflops = 0.0;  // at that best time
};

// Runs `body` in calibrated batches until each timed rep spans >= min_ms,
// keeps the best of `repeats` reps.
Measurement measure(double flops, double min_ms, std::int64_t repeats,
                    const std::function<void()>& body) {
  using clock = std::chrono::steady_clock;
  std::int64_t iters = 1;
  double best_s = 1e30;
  for (std::int64_t rep = 0; rep < repeats;) {
    const auto t0 = clock::now();
    for (std::int64_t i = 0; i < iters; ++i) body();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s * 1e3 < min_ms) {
      iters *= 2;  // calibrate up, don't count this rep
      continue;
    }
    best_s = std::min(best_s, s / static_cast<double>(iters));
    ++rep;
  }
  return {best_s * 1e3, flops / best_s / 1e9};
}

struct Case {
  std::string kernel;
  std::int64_t block;
  double flops;
  std::function<void()> body;
};

// Builds the per-kernel benchmark bodies at block size b. The buffers live
// in the returned closures.
std::vector<Case> make_cases(std::int64_t b) {
  std::vector<Case> cases;

  {
    auto a = random_vec(b * b, 45);
    auto bb = random_vec(b * b, 46);
    auto c = random_vec(b * b, 47);
    cases.push_back({"gemm_minus_abt", b, num::flops_gemm(b, b, b),
                     [=]() mutable {
                       num::gemm_minus_abt(a.data(), b, bb.data(), b, c.data(),
                                           b, b, b, b);
                     }});
  }
  {
    auto a = random_vec(b * b, 48);
    auto bb = random_vec(b * b, 49);
    auto c = random_vec(b * b, 50);
    cases.push_back({"gemm_minus_ab", b, num::flops_gemm(b, b, b),
                     [=]() mutable {
                       num::gemm_minus_ab(a.data(), b, bb.data(), b, c.data(),
                                          b, b, b, b);
                     }});
  }
  {
    auto base = random_spd(b, 42);
    auto a = base;
    cases.push_back({"potrf_lower", b, num::flops_potrf(b),
                     [=]() mutable {
                       a = base;
                       num::potrf_lower(a.data(), b, b);
                     }});
  }
  {
    auto l = random_spd(b, 43);
    num::potrf_lower_ref(l.data(), b, b);
    auto panel = random_vec(b * b, 44);
    auto x = panel;
    cases.push_back({"trsm_right_lt", b, num::flops_trsm(b, b),
                     [=]() mutable {
                       x = panel;
                       num::trsm_right_lower_transpose(l.data(), b, x.data(),
                                                       b, b, b);
                     }});
  }
  {
    auto l = random_vec(b * b, 51);
    for (std::int64_t j = 0; j < b; ++j) l[j * b + j] = 1.0;
    auto panel = random_vec(b * b, 52);
    auto x = panel;
    cases.push_back({"trsm_left_ul", b, num::flops_trsm(b, b),
                     [=]() mutable {
                       x = panel;
                       num::trsm_left_unit_lower(l.data(), b, x.data(), b, b,
                                                 b);
                     }});
  }
  {
    const std::int64_t m = 4 * b;
    auto base = random_vec(m * b, 53);
    for (std::int64_t j = 0; j < b; ++j) base[j * m + j] += 4.0;
    auto a = base;
    std::vector<std::int32_t> piv(static_cast<std::size_t>(b));
    cases.push_back({"getrf_panel", b, num::flops_getrf_panel(m, b),
                     [=]() mutable {
                       a = base;
                       num::getrf_panel(a.data(), m, m, b, piv.data());
                     }});
  }
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("blocks", "16,32,64,128", "block sizes to sweep");
  flags.define("min_ms", "20", "minimum wall time per timed rep (ms)");
  flags.define("repeats", "3", "timed reps per case; best is reported");
  flags.define("json", "", "also write machine-readable results to this path");
  flags.parse(argc, argv);
  if (flags.help_requested()) return 0;

  const auto blocks = flags.get_int_list("blocks");
  const double min_ms = flags.get_double("min_ms");
  const std::int64_t repeats = flags.get_int("repeats");

  std::printf("== Kernel micro-benchmarks: naive loops vs blocked SIMD ==\n");
  std::printf("vector extensions compiled in: %s\n",
              num::kernels_vectorized() ? "yes" : "no (scalar fallback)");
  std::printf("levels forced via set_kernel_level; getrf panels are 4bxb\n\n");

  TextTable table({"kernel", "block", "level", "ms", "gflops", "speedup"});
  // ref GFLOP/s per (kernel, block), to fill the blocked rows' speedup cell.
  std::map<std::pair<std::string, std::int64_t>, double> ref_gflops;

  for (const std::int64_t b : blocks) {
    for (const num::KernelLevel level :
         {num::KernelLevel::kRef, num::KernelLevel::kBlocked}) {
      num::set_kernel_level(level);
      const bool blocked = level == num::KernelLevel::kBlocked;
      for (auto& c : make_cases(b)) {
        const Measurement m = measure(c.flops, min_ms, repeats, c.body);
        std::string speedup = "-";
        if (blocked) {
          const double base = ref_gflops[{c.kernel, b}];
          if (base > 0.0) speedup = fixed(m.gflops / base, 2) + "x";
        } else {
          ref_gflops[{c.kernel, b}] = m.gflops;
        }
        table.add_row({c.kernel, std::to_string(b),
                       blocked ? "blocked" : "naive", fixed(m.ms, 4),
                       fixed(m.gflops, 2), speedup});
      }
    }
  }
  num::set_kernel_level(num::KernelLevel::kAuto);

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nexpected shape: blocked rows pull ahead of naive as the block size "
      "grows; the dispatch thresholds sit where the curves cross.\n");

  JsonValue doc = JsonValue::object();
  doc["artifact"] = "micro_kernels";
  doc["vectorized"] = num::kernels_vectorized();
  JsonValue rows = JsonValue::array();
  for (const auto& row : table.rows()) {
    JsonValue obj = JsonValue::object();
    for (std::size_t c = 0; c < row.size(); ++c) {
      obj[table.header()[c]] = row[c];
    }
    rows.push_back(std::move(obj));
  }
  doc["rows"] = std::move(rows);
  const std::string path = flags.get("json");
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open --json path %s\n", path.c_str());
      return 1;
    }
    const std::string text = doc.dump();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("\njson results written to %s\n", path.c_str());
  }
  return 0;
}
