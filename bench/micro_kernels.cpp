// google-benchmark micro suite for the dense block kernels (the task bodies
// of the factorization workloads) — establishes the per-task cost scale the
// machine model's flop rate abstracts.
#include <benchmark/benchmark.h>

#include <vector>

#include "rapid/num/kernels.hpp"
#include "rapid/support/rng.hpp"

namespace {

using namespace rapid;

std::vector<double> random_spd(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> a(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = rng.next_double(-1.0, 1.0);
  // A := (A + A^T)/2 + n·I keeps it SPD without an O(n^3) product.
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < j; ++i) {
      const double avg = 0.5 * (a[j * n + i] + a[i * n + j]);
      a[j * n + i] = a[i * n + j] = avg;
    }
    a[j * n + j] = static_cast<double>(n) + 1.0;
  }
  return a;
}

void BM_Potrf(benchmark::State& state) {
  const std::int64_t b = state.range(0);
  const auto base = random_spd(b, 42);
  for (auto _ : state) {
    auto a = base;
    num::potrf_lower(a.data(), b, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["flops"] = num::flops_potrf(b);
}
BENCHMARK(BM_Potrf)->Arg(16)->Arg(32)->Arg(64);

void BM_TrsmRightLowerTranspose(benchmark::State& state) {
  const std::int64_t b = state.range(0);
  auto l = random_spd(b, 43);
  num::potrf_lower(l.data(), b, b);
  Rng rng(44);
  std::vector<double> panel(static_cast<std::size_t>(b * b));
  for (auto& v : panel) v = rng.next_double(-1.0, 1.0);
  for (auto _ : state) {
    auto x = panel;
    num::trsm_right_lower_transpose(l.data(), b, x.data(), b, b, b);
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["flops"] = num::flops_trsm(b, b);
}
BENCHMARK(BM_TrsmRightLowerTranspose)->Arg(16)->Arg(32)->Arg(64);

void BM_GemmMinusAbt(benchmark::State& state) {
  const std::int64_t b = state.range(0);
  Rng rng(45);
  std::vector<double> a(static_cast<std::size_t>(b * b));
  std::vector<double> bb(static_cast<std::size_t>(b * b));
  std::vector<double> c(static_cast<std::size_t>(b * b));
  for (auto& v : a) v = rng.next_double(-1.0, 1.0);
  for (auto& v : bb) v = rng.next_double(-1.0, 1.0);
  for (auto _ : state) {
    num::gemm_minus_abt(a.data(), b, bb.data(), b, c.data(), b, b, b, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["flops"] = num::flops_gemm(b, b, b);
}
BENCHMARK(BM_GemmMinusAbt)->Arg(16)->Arg(32)->Arg(64);

void BM_GetrfPanel(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  const std::int64_t w = 16;
  Rng rng(46);
  std::vector<double> base(static_cast<std::size_t>(m * w));
  for (auto& v : base) v = rng.next_double(-1.0, 1.0);
  for (std::int64_t j = 0; j < w; ++j) base[j * m + j] += 4.0;
  std::vector<std::int32_t> piv(static_cast<std::size_t>(w));
  for (auto _ : state) {
    auto a = base;
    num::getrf_panel(a.data(), m, m, w, piv.data());
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["flops"] = num::flops_getrf_panel(m, w);
}
BENCHMARK(BM_GetrfPanel)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
