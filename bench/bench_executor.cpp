// Threaded-executor wall-clock benchmark — the repo's first *measured* (not
// simulated) performance trajectory. Runs the seed Cholesky and LU
// workloads through the real std::thread executor across processor counts,
// in both memory modes (baseline preallocation at TOT vs. active memory
// management at a fraction of TOT), and reports wall time, task throughput
// and protocol traffic. With --json it emits BENCH_executor.json so CI can
// accumulate per-PR numbers; numerics are validated against the reference
// factorizations on the first repeat so a fast-but-wrong data plane cannot
// pass unnoticed.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <thread>

#include "common.hpp"
#include "rapid/num/dispatch.hpp"
#include "rapid/num/reference.hpp"
#include "rapid/obs/metrics.hpp"
#include "rapid/obs/trace.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/rt/transport.hpp"
#include "rapid/support/exit_codes.hpp"
#include "rapid/support/str.hpp"
#include "rapid/verify/conformance.hpp"

using namespace rapid;

namespace {

struct RunStats {
  double best_ms = 0.0;
  double mean_ms = 0.0;
  double tasks_per_sec = 0.0;
  double residual = 0.0;
  /// First-repeat residual within the acceptance bound. A wrong result is
  /// a *finding* (kExitFindings), not an infrastructure error — the
  /// artifact still records the row so the regression is diagnosable.
  bool numerics_ok = true;
  rt::RunReport report;  // counters from the last repeat
  // Conformance verdict of the last traced repeat (-1 = not checked): the
  // traced guard row doubles as a protocol check, so a fast-but-
  // nonconformant run is visible in the benchmark artifact.
  int conformance_errors = -1;
  int conformance_warnings = -1;
};

/// Runs the plan `repeats` times on the threaded executor; wall time is the
/// executor's own measurement (threads only, no plan building). The first
/// repeat's numerics are checked against the dense reference.
RunStats run_threaded(const bench::Instance& inst, const rt::RunPlan& plan,
                      std::int64_t capacity, bool active, int repeats,
                      const rt::FaultPlan& faults = {}, bool checksum = true,
                      bool recovery = false, bool traced = false,
                      bool slab = true,
                      rt::TransportKind transport = rt::TransportKind::kInProc) {
  rt::RunConfig config;
  config.params = inst.params;
  config.capacity_per_proc = capacity;
  config.active_memory = active;
  config.slab_arena = slab;
  const rt::ObjectInit init =
      inst.cholesky ? inst.cholesky->make_init() : inst.lu->make_init();
  const rt::TaskBody body =
      inst.cholesky ? inst.cholesky->make_body() : inst.lu->make_body();
  rt::ThreadedOptions options;
  options.faults = faults;
  options.checksum = checksum;
  options.transport = transport;
  if (recovery) options.retry = RetryPolicy::standard();

  RunStats stats;
  stats.best_ms = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    // A fresh ring per repeat so each run's metrics stand alone; the trace
    // must outlive run(), so it is scoped to the repeat, not the executor.
    std::unique_ptr<obs::Trace> trace;
    if (traced) {
      trace = std::make_unique<obs::Trace>(inst.num_procs);
      options.trace = trace.get();
    }
    rt::ThreadedExecutor exec(plan, config, init, body, options);
    const rt::RunReport report = exec.run();
    if (!report.executable) {
      stats.report = report;
      return stats;  // caller escalates capacity
    }
    if (rep == 0) {
      if (inst.cholesky) {
        stats.residual = num::cholesky_residual(
            inst.cholesky->matrix(), inst.cholesky->extract_l_dense(exec));
      } else {
        const auto ex = inst.lu->extract(exec);
        stats.residual = num::lu_residual(inst.lu->matrix(), ex.lu, ex.piv);
      }
      if (stats.residual >= 1e-8) {
        stats.numerics_ok = false;
        std::fprintf(stderr, "numerically wrong run, residual %g\n",
                     stats.residual);
      }
    }
    const double ms = report.parallel_time_us / 1000.0;
    stats.best_ms = std::min(stats.best_ms, ms);
    stats.mean_ms += ms / repeats;
    stats.report = report;
    if (traced && rep == repeats - 1) {
      verify::ConformanceOptions copts;
      copts.capacity_per_proc = active ? capacity : 0;
      copts.active_memory = active;
      copts.alignment = 8;  // rt::ProcMemory alignment
      copts.slab_arena = slab;
      copts.report = &stats.report;
      const verify::AuditReport conf =
          verify::check_conformance(plan, *trace, copts);
      stats.conformance_errors = conf.errors();
      stats.conformance_warnings = conf.warnings();
      if (!conf.clean()) {
        std::fprintf(stderr, "conformance findings on the traced row:\n%s",
                     conf.to_string().c_str());
      }
    }
  }
  stats.tasks_per_sec =
      static_cast<double>(stats.report.tasks_executed) / (stats.best_ms / 1e3);
  return stats;
}

JsonValue run_json(const std::string& workload, int procs, const char* mode,
                   std::int64_t capacity, const RunStats& s) {
  JsonValue r = JsonValue::object();
  r["workload"] = workload;
  r["procs"] = procs;
  r["mode"] = mode;
  r["transport"] = s.report.transport;
  r["capacity_bytes"] = capacity;
  r["best_ms"] = s.best_ms;
  r["mean_ms"] = s.mean_ms;
  r["tasks_per_sec"] = s.tasks_per_sec;
  r["tasks"] = s.report.tasks_executed;
  r["maps_avg"] = s.report.avg_maps();
  r["content_messages"] = s.report.content_messages;
  r["content_bytes"] = s.report.content_bytes;
  r["put_batches"] = s.report.put_batches;
  r["flag_messages"] = s.report.flag_messages;
  r["addr_packages"] = s.report.addr_packages;
  r["suspended_sends"] = s.report.suspended_sends;
  r["residual"] = s.residual;
  r["numerics_ok"] = s.numerics_ok;
  JsonValue rec = JsonValue::object();
  rec["nacks_sent"] = s.report.recovery.nacks_sent;
  rec["resends"] = s.report.recovery.resends;
  rec["flag_resends"] = s.report.recovery.flag_resends;
  rec["duplicate_suppressions"] = s.report.recovery.duplicate_suppressions;
  rec["checksum_rejections"] = s.report.recovery.checksum_rejections;
  rec["task_retries"] = s.report.recovery.task_retries;
  r["recovery"] = std::move(rec);
  if (s.conformance_errors >= 0) {
    r["conformance_errors"] = s.conformance_errors;
    r["conformance_warnings"] = s.conformance_warnings;
  }
  if (s.report.metrics) r["metrics"] = s.report.metrics->to_json();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("repeats", "3", "timed repetitions per configuration");
  flags.define("frac", "0.6",
               "active-memory capacity as a fraction of TOT (clamped up to "
               "MIN_MEM)");
  flags.define("workload", "both", "cholesky, lu, or both");
  flags.define("faults", "",
               "fault-injection preset for the active runs: addr, put, slow, "
               "or park (empty = injection off; see docs/FAULTS.md)");
  flags.define("fault_seed", "1", "seed for the --faults preset");
  flags.define("checksum", "1",
               "integrity-checked RMA (CRC32C on every put and address "
               "package); 0 isolates the checksum overhead vs the PR 2 "
               "data plane");
  flags.define("recovery", "0",
               "add an active+recovery row (bounded re-request recovery "
               "armed, RetryPolicy::standard) so one artifact shows the "
               "clean-run recovery overhead");
  flags.define("trace", "0",
               "add an active+tracing row (event tracer armed at the default "
               "ring size); the delta against the 'active' row is the "
               "tracing overhead and is recorded as trace_overhead_pct");
  flags.define("slab", "1",
               "slab-backed arena fast path on every run (the traced row's "
               "conformance replay matches the flag); 0 isolates the slab "
               "speedup");
  flags.define("kernels", "auto",
               "dense-kernel dispatch level: auto, ref, or blocked "
               "(isolates the micro-kernel speedup from runtime effects)");
  flags.define("transport", "inproc",
               "one-sided transport backend: inproc (threads) or shm (one "
               "OS process per paper-processor over POSIX shared memory); "
               "every JSON row records the backend it ran on");
  try {
    if (bench::parse_common_flags(flags, argc, argv)) return kExitOk;
  } catch (const rapid::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitInfraError;
  }
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const int repeats = std::max<int>(1, static_cast<int>(flags.get_int("repeats")));
  const double frac = flags.get_double("frac");
  const std::string which = flags.get("workload");
  const std::string fault_preset = flags.get("faults");
  const bool checksum = flags.get_int("checksum") != 0;
  const bool recovery = flags.get_int("recovery") != 0;
  const bool traced = flags.get_int("trace") != 0;
  const bool slab = flags.get_int("slab") != 0;
  const std::string kernels = flags.get("kernels");
  if (kernels == "ref") {
    num::set_kernel_level(num::KernelLevel::kRef);
  } else if (kernels == "blocked") {
    num::set_kernel_level(num::KernelLevel::kBlocked);
  } else if (kernels != "auto") {
    std::fprintf(stderr, "unknown --kernels level '%s'\n", kernels.c_str());
    return kExitInfraError;
  }
  rt::TransportKind transport = rt::TransportKind::kInProc;
  try {
    transport = rt::transport_from_string(flags.get("transport"));
  } catch (const rapid::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitInfraError;
  }
  rt::FaultPlan faults;  // disabled unless --faults names a preset
  if (!fault_preset.empty()) {
    faults = rt::FaultPlan::preset(
        fault_preset,
        static_cast<std::uint64_t>(flags.get_int("fault_seed")));
  }

  bench::print_header(
      "Executor benchmark: threaded (std::thread) wall time & throughput",
      "Cholesky (bcsstk24-like, RCP) and LU (goodwin-like, RCP)",
      cat("hardware_concurrency = ", std::thread::hardware_concurrency(),
          ", repeats = ", repeats, ", active capacity = max(MIN_MEM, ",
          frac, " * TOT)",
          fault_preset.empty()
              ? ""
              : cat(", FAULT INJECTION '", fault_preset,
                    "' on active runs — times are not comparable")));

  TextTable table({"workload", "p", "mode", "cap/TOT", "best ms", "mean ms",
                   "tasks/s", "maps", "msgs", "susp"});
  JsonValue runs = JsonValue::array();
  // CI gate (kExitFindings): a conformance error on a traced guard row or a
  // numerically wrong run fails the bench with the artifact intact.
  bool guard_failed = false;

  try {
  for (const std::int64_t p64 : flags.get_int_list("procs")) {
    const int p = static_cast<int>(p64);
    std::vector<bench::Instance> instances;
    if (which == "cholesky" || which == "both") {
      instances.push_back(
          bench::make_cholesky_instance(num::bcsstk24_like(scale), block, p));
    }
    if (which == "lu" || which == "both") {
      instances.push_back(
          bench::make_lu_instance(num::goodwin_like(scale), block, p));
    }
    for (const bench::Instance& inst : instances) {
      const std::string workload = cat(inst.cholesky ? "chol/" : "lu/",
                                       inst.name);
      const auto schedule = bench::make_schedule(inst, bench::OrderingKind::kRcp);
      const rt::RunPlan plan = rt::build_run_plan(*inst.graph, schedule);
      const std::int64_t tot = bench::tot_mem(inst, schedule);
      const std::int64_t min = bench::min_mem(inst, schedule);

      const RunStats base =
          run_threaded(inst, plan, tot, false, repeats, {}, checksum,
                       /*recovery=*/false, /*traced=*/false, slab, transport);
      // Fragmentation and 8-byte alignment put the practical floor above
      // MIN_MEM; escalate the capacity fraction until the run executes.
      double used_frac = frac;
      std::int64_t active_cap = 0;
      RunStats act;
      for (;; used_frac += 0.1) {
        active_cap = std::max(
            min, static_cast<std::int64_t>(used_frac * static_cast<double>(tot)));
        act = run_threaded(inst, plan, active_cap, true, repeats, faults,
                           checksum, /*recovery=*/false, /*traced=*/false,
                           slab, transport);
        if (act.report.executable) break;
        RAPID_CHECK(used_frac < 1.5,
                    cat("active run never became executable: ",
                        act.report.failure));
      }

      RunStats rec;
      if (recovery) {
        // Same plan and capacity with the full self-healing layer armed:
        // the delta against the "active" row is the recovery overhead on a
        // clean run (deadline bookkeeping; checksums are governed by
        // --checksum in both rows).
        rec = run_threaded(inst, plan, active_cap, true, repeats, faults,
                           checksum, /*recovery=*/true, /*traced=*/false,
                           slab, transport);
      }
      RunStats trc;
      if (traced) {
        // Same plan and capacity with the event tracer armed: the delta
        // against the "active" row is the tracing overhead (the guard for
        // the "within 10% of untraced" budget in docs/OBSERVABILITY.md).
        trc = run_threaded(inst, plan, active_cap, true, repeats, faults,
                           checksum, recovery, /*traced=*/true, slab,
                           transport);
        if (trc.conformance_errors > 0) guard_failed = true;
      }
      if (!base.numerics_ok || !act.numerics_ok || !rec.numerics_ok ||
          !trc.numerics_ok) {
        guard_failed = true;
      }
      std::vector<std::tuple<const char*, std::int64_t, const RunStats*>>
          rows = {{"baseline", tot, &base}, {"active", active_cap, &act}};
      if (recovery) rows.push_back({"act+rec", active_cap, &rec});
      if (traced) rows.push_back({"act+trace", active_cap, &trc});
      for (const auto& [mode, cap, sp] : rows) {
        const RunStats& s = *sp;
        const double cap_pct =
            100.0 * static_cast<double>(cap) / static_cast<double>(tot);
        table.add_row({workload, std::to_string(p), mode,
                       fixed(cap_pct, 0) + "%", fixed(s.best_ms, 2),
                       fixed(s.mean_ms, 2), fixed(s.tasks_per_sec, 0),
                       fixed(s.report.avg_maps(), 1),
                       std::to_string(s.report.content_messages),
                       std::to_string(s.report.suspended_sends)});
        JsonValue r = run_json(workload, p, mode, cap, s);
        if (sp == &trc) {
          const RunStats& untr = recovery ? rec : act;
          r["trace_overhead_pct"] =
              100.0 * (trc.best_ms - untr.best_ms) / untr.best_ms;
        }
        runs.push_back(std::move(r));
      }
    }
  }
  } catch (const rapid::Error& e) {
    // Infrastructure: the bench itself could not run (workload build, audit
    // precondition, escalation exhausted). Distinct from findings so CI can
    // tell a broken lane from a measured regression.
    std::fprintf(stderr, "bench_executor: %s\n", e.what());
    return kExitInfraError;
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nbaseline = all volatile space preallocated at TOT (original "
      "RAPID);\nactive = MAP-managed memory at the reduced capacity. Both "
      "run real\nfactorization kernels; residuals are checked against dense "
      "references.\n");

  JsonValue doc = JsonValue::object();
  doc["artifact"] = "bench_executor";
  doc["scale"] = scale;
  doc["block"] = static_cast<std::int64_t>(block);
  doc["repeats"] = repeats;
  doc["frac"] = frac;
  doc["faults"] = fault_preset;
  doc["checksum"] = checksum;
  doc["recovery"] = recovery;
  doc["trace"] = traced;
  doc["slab"] = slab;
  doc["transport"] = rt::to_string(transport);
  if (!fault_preset.empty()) {
    doc["fault_seed"] = flags.get_int("fault_seed");
  }
  doc["hardware_concurrency"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  doc["runs"] = std::move(runs);
  bench::write_json_file(flags, doc);
  if (guard_failed) {
    std::fprintf(stderr,
                 "bench_executor: guard failed (conformance errors on the "
                 "traced row or a numerically wrong run)\n");
    return kExitFindings;
  }
  return kExitOk;
}
