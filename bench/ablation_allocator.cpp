// Ablation: the "special memory allocator" question from the paper's §6.
// Freed volatile space "contains many small pieces and is hard to
// re-utilize" — so how much capacity above MIN_MEM does each placement
// policy actually need before a schedule becomes executable, and how
// fragmented does the arena get?
//
// For each workload we binary-search the executability threshold under
// first-fit and best-fit and report the margin over MIN_MEM (the
// fragmentation tax). Uniform-object workloads (factorizations with equal
// blocks) have no tax; mixed-size ones (triangular solve with vector
// segments + matrix blocks) do.
#include <cstdio>

#include "common.hpp"
#include "rapid/num/trisolve_app.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/ordering.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

namespace {

struct Case {
  std::string name;
  // Owners: the run plan points into the app's task graph, so whichever app
  // produced it must outlive the simulations.
  std::shared_ptr<num::CholeskyApp> cholesky;
  std::shared_ptr<num::LuApp> lu;
  std::shared_ptr<num::TriSolveApp> trisolve;
  rt::RunPlan plan;
  std::int64_t min_mem = 0;
};

std::int64_t find_threshold(const rt::RunPlan& plan, std::int64_t min_mem,
                            mem::AllocPolicy policy,
                            const machine::MachineParams& params) {
  // Exponential probe up, then binary search down to 8-byte resolution.
  auto executable = [&](std::int64_t capacity) {
    rt::RunConfig c;
    c.params = params;
    c.capacity_per_proc = capacity;
    c.alloc_policy = policy;
    return rt::simulate(plan, c).executable;
  };
  std::int64_t hi = min_mem;
  while (!executable(hi)) hi += std::max<std::int64_t>(8, min_mem / 64);
  if (hi == min_mem) return hi;
  std::int64_t lo = hi - std::max<std::int64_t>(8, min_mem / 64);  // fails
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (executable(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("scale", "0.5", "workload scale in (0,1]");
  flags.define("procs", "8", "processor count");
  flags.parse(argc, argv);
  if (flags.help_requested()) return 0;
  const double scale = flags.get_double("scale");
  const int procs = static_cast<int>(flags.get_int("procs"));
  const auto params = machine::MachineParams::cray_t3d(procs);

  bench::print_header(
      "Ablation: volatile-space allocator policy (paper §6)",
      "Cholesky / LU / triangular solve",
      "threshold = smallest executable capacity; margin = threshold/MIN_MEM "
      "- 1 (the fragmentation tax)");

  std::vector<Case> cases;
  {
    auto inst = bench::make_cholesky_instance(num::bcsstk24_like(scale), 16,
                                              procs);
    const auto s = bench::make_schedule(inst, bench::OrderingKind::kMpo);
    Case c;
    c.name = "cholesky (uniform blocks)";
    c.cholesky = inst.cholesky;
    c.plan = rt::build_run_plan(*inst.graph, s);
    c.min_mem = bench::min_mem(inst, s);
    cases.push_back(std::move(c));
  }
  {
    auto inst =
        bench::make_lu_instance(num::goodwin_like(scale * 0.6), 12, procs);
    const auto s = bench::make_schedule(inst, bench::OrderingKind::kMpo);
    Case c;
    c.name = "LU (column blocks)";
    c.lu = inst.lu;
    c.plan = rt::build_run_plan(*inst.graph, s);
    c.min_mem = bench::min_mem(inst, s);
    cases.push_back(std::move(c));
  }
  {
    const auto side = static_cast<sparse::Index>(24 * scale + 8);
    sparse::CscMatrix a = sparse::grid_laplacian_2d(side, side);
    a = a.permuted_symmetric(sparse::nested_dissection_2d(side, side));
    auto app = std::make_shared<num::TriSolveApp>(
        num::TriSolveApp::build(std::move(a), 6, procs));
    const auto assignment = sched::owner_compute_tasks(app->graph(), procs);
    const auto s =
        sched::schedule_mpo(app->graph(), assignment, procs, params);
    Case c;
    c.name = "trisolve (mixed sizes)";
    c.trisolve = app;
    c.plan = rt::build_run_plan(app->graph(), s);
    c.min_mem = sched::analyze_liveness(app->graph(), s).min_mem();
    cases.push_back(std::move(c));
  }

  TextTable table({"workload", "MIN_MEM", "first-fit margin",
                   "best-fit margin"});
  for (const Case& c : cases) {
    const std::int64_t ff =
        find_threshold(c.plan, c.min_mem, mem::AllocPolicy::kFirstFit, params);
    const std::int64_t bf =
        find_threshold(c.plan, c.min_mem, mem::AllocPolicy::kBestFit, params);
    auto margin = [&](std::int64_t threshold) {
      return fixed(100.0 * (static_cast<double>(threshold) / c.min_mem - 1.0),
                   2) +
             "%";
    };
    table.add_row({c.name, human_bytes(static_cast<double>(c.min_mem)),
                   margin(ff), margin(bf)});
  }
  bench::emit_table(flags, "ablation_allocator", table);
  std::printf(
      "\nexpected shape: ~0%% margin for uniform-size objects; a small but "
      "real margin\nfor mixed sizes — the reason the paper's conclusion "
      "calls for a special allocator.\n");
  return 0;
}
