// Ablation: the space/time knob of DTS slice merging. Sweeping the merge
// budget from 0 (pure DTS, minimum memory, longest schedule) to infinity
// (single slice, pure critical-path behaviour) traces the trade-off curve
// the paper's Tables 6 and 7 sample at two points; RCP and MPO are shown as
// reference lines.
#include <cstdio>

#include "common.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

namespace {

void run_panel(const char* title, bool lu, double scale, sparse::Index block,
               int procs, JsonValue& panels) {
  const num::Workload workload =
      lu ? num::goodwin_like(scale) : num::bcsstk24_like(scale);
  const bench::Instance inst =
      lu ? bench::make_lu_instance(workload, block, procs)
         : bench::make_cholesky_instance(workload, block, procs);
  std::printf("--- %s (%s, p = %d) ---\n", title, workload.name.c_str(),
              procs);

  const auto rcp = bench::make_schedule(inst, bench::OrderingKind::kRcp);
  const auto mpo = bench::make_schedule(inst, bench::OrderingKind::kMpo);
  const double rcp_time = rcp.predicted_makespan;

  TextTable table({"merge budget", "MIN_MEM / (S1/p)", "makespan vs RCP"});
  const auto dts_ref = bench::make_schedule(inst, bench::OrderingKind::kDts);
  const auto s1 = inst.sequential_space();
  auto add_row = [&](const std::string& label, const sched::Schedule& s) {
    const auto mem = bench::min_mem(inst, s);
    table.add_row({label,
                   fixed(static_cast<double>(mem) * procs /
                             static_cast<double>(s1),
                         2),
                   pct(s.predicted_makespan / rcp_time - 1.0)});
  };
  add_row("RCP (reference)", rcp);
  add_row("MPO (reference)", mpo);
  const auto dts_min = bench::min_mem(inst, dts_ref);
  for (double budget_frac : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 4.0}) {
    const auto budget =
        static_cast<std::int64_t>(static_cast<double>(dts_min) * budget_frac);
    const auto merged =
        bench::make_schedule(inst, bench::OrderingKind::kDtsMerged, budget);
    add_row("DTS merge " + fixed(budget_frac, 2) + "*MIN_MEM(DTS)", merged);
  }
  std::fputs(table.render().c_str(), stdout);
  panels[lu ? "lu" : "cholesky"] = bench::table_to_json(table);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (bench::parse_common_flags(flags, argc, argv)) return 0;
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));

  bench::print_header(
      "Ablation: DTS slice-merge budget — the continuous space/time knob",
      "Cholesky + LU",
      "MIN_MEM/S1*p = per-processor memory relative to the S1/p lower bound "
      "(1.0 = perfect)");
  JsonValue panels = JsonValue::object();
  run_panel("(a) sparse Cholesky", /*lu=*/false, scale, block, 16, panels);
  run_panel("(b) sparse LU", /*lu=*/true, scale, block, 16, panels);
  std::printf(
      "expected shape: larger budgets monotonically trade memory for time, "
      "approaching\nRCP's makespan from above while MIN_MEM climbs from the "
      "DTS floor.\n");
  JsonValue doc = JsonValue::object();
  doc["artifact"] = "ablation_orderings";
  doc["scale"] = scale;
  doc["block"] = static_cast<std::int64_t>(block);
  doc["panels"] = std::move(panels);
  bench::write_json_file(flags, doc);
  return 0;
}
