// Figure 7: memory scalability (reduction ratio S1 / S_p) of the three
// scheduling heuristics for (a) sparse Cholesky and (b) sparse LU, p = 2..32,
// against the perfect ratio S1 / (S1/p) = p.
//
// Paper's qualitative content: DTS ≈ perfect; MPO clearly better than RCP;
// RCP far from scalable, especially for LU.
#include <cstdio>

#include "common.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

namespace {

void run_panel(const char* title, bool lu, double scale, sparse::Index block,
               const std::vector<std::int64_t>& procs, JsonValue& panels) {
  std::printf("--- %s ---\n", title);
  TextTable table({"p", "perfect (=p)", "RCP", "MPO", "DTS"});
  for (const auto p : procs) {
    const num::Workload workload =
        lu ? num::goodwin_like(scale) : num::bcsstk24_like(scale);
    const bench::Instance inst =
        lu ? bench::make_lu_instance(workload, block, static_cast<int>(p))
           : bench::make_cholesky_instance(workload, block,
                                           static_cast<int>(p));
    std::vector<std::string> row = {std::to_string(p),
                                    fixed(static_cast<double>(p), 2)};
    for (auto kind : {bench::OrderingKind::kRcp, bench::OrderingKind::kMpo,
                      bench::OrderingKind::kDts}) {
      const auto schedule = bench::make_schedule(inst, kind);
      const double ratio =
          static_cast<double>(inst.sequential_space()) /
          static_cast<double>(bench::min_mem(inst, schedule));
      row.push_back(fixed(ratio, 2));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  panels[lu ? "lu" : "cholesky"] = bench::table_to_json(table);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (bench::parse_common_flags(flags, argc, argv)) return 0;
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const auto procs = flags.get_int_list("procs");

  bench::print_header("Figure 7: memory scalability S1 / S_p of RCP/MPO/DTS",
                      "(a) " + num::bcsstk24_like(scale).name + "   (b) " +
                          num::goodwin_like(scale).name,
                      "S_p = MIN_MEM of the schedule; perfect = S1/(S1/p) = p");
  JsonValue panels = JsonValue::object();
  run_panel("(a) sparse Cholesky", /*lu=*/false, scale, block, procs, panels);
  run_panel("(b) sparse LU with partial pivoting", /*lu=*/true, scale, block,
            procs, panels);
  std::printf(
      "expected shape: DTS tracks the perfect curve, MPO reduces memory "
      "substantially,\nRCP is not memory scalable (flat), worst for LU.\n");
  JsonValue doc = JsonValue::object();
  doc["artifact"] = "fig7_memory_scalability";
  doc["scale"] = scale;
  doc["block"] = static_cast<std::int64_t>(block);
  doc["panels"] = std::move(panels);
  bench::write_json_file(flags, doc);
  return 0;
}
