// Ablation: stage-one clustering — the paper's two options ("tasks are
// clustered to exploit data locality using DSC or the owner-compute rule").
// Compares the cyclic owner-compute mapping the experiments use against
// DSC + LPT on predicted makespan and memory, for both workloads.
#include <cstdio>

#include "common.hpp"
#include "rapid/sched/dsc.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

namespace {

void run_panel(const char* title, bool lu, double scale, sparse::Index block,
               const std::vector<std::int64_t>& procs, JsonValue& panels) {
  std::printf("--- %s ---\n", title);
  TextTable table({"p", "owner-compute makespan", "DSC+LPT makespan",
                   "owner-compute MIN_MEM", "DSC+LPT MIN_MEM",
                   "DSC clusters (raw->closed)"});
  for (const auto p : procs) {
    const int np = static_cast<int>(p);
    const num::Workload workload =
        lu ? num::goodwin_like(scale) : num::bcsstk24_like(scale);
    // Owner-compute path (the instance builders assign cyclic owners).
    const bench::Instance inst =
        lu ? bench::make_lu_instance(workload, block, np)
           : bench::make_cholesky_instance(workload, block, np);
    const auto oc = bench::make_schedule(inst, bench::OrderingKind::kMpo);
    const auto oc_mem = bench::min_mem(inst, oc);
    // DSC path: recluster the same graph, remap owners, reorder.
    sched::DscStats stats;
    const sched::Clustering clusters =
        sched::dsc_clusters(*inst.graph, inst.params, &stats);
    const auto dsc_procs =
        sched::map_clusters_lpt(*inst.graph, clusters, np);
    const auto dsc = sched::schedule_mpo(*inst.graph, dsc_procs, np,
                                         inst.params);
    const auto dsc_mem =
        sched::analyze_liveness(*inst.graph, dsc).min_mem();
    table.add_row({std::to_string(p),
                   fixed(oc.predicted_makespan / 1e3, 1) + " ms",
                   fixed(dsc.predicted_makespan / 1e3, 1) + " ms",
                   human_bytes(static_cast<double>(oc_mem)),
                   human_bytes(static_cast<double>(dsc_mem)),
                   cat(stats.raw_clusters, "->", stats.closed_clusters)});
  }
  std::fputs(table.render().c_str(), stdout);
  panels[lu ? "lu" : "cholesky"] = bench::table_to_json(table);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("scale", "0.5", "workload scale in (0,1]");
  flags.define("block", "16", "block size");
  flags.define("procs", "4,8,16", "processor counts");
  flags.define("json", "",
               "also write machine-readable results to this path");
  flags.parse(argc, argv);
  if (flags.help_requested()) return 0;
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const auto procs = flags.get_int_list("procs");

  bench::print_header(
      "Ablation: stage-one clustering — cyclic owner-compute vs DSC + LPT",
      "Cholesky + LU (MPO ordering in both paths)",
      "DSC zeroes critical-path edges, then owner-closure merges co-writer "
      "clusters");
  JsonValue panels = JsonValue::object();
  run_panel("(a) sparse Cholesky", /*lu=*/false, scale, block, procs, panels);
  run_panel("(b) sparse LU", /*lu=*/true, scale, block, procs, panels);
  std::printf(
      "expected shape: DSC trades some load balance for locality; for these "
      "regular\nfactorization graphs the cyclic owner-compute mapping (what "
      "the paper's\nexperiments use) is competitive or better, which is why "
      "the paper uses it.\n");
  JsonValue doc = JsonValue::object();
  doc["artifact"] = "ablation_clustering";
  doc["scale"] = scale;
  doc["block"] = static_cast<std::int64_t>(block);
  doc["panels"] = std::move(panels);
  bench::write_json_file(flags, doc);
  return 0;
}
