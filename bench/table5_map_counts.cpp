// Table 5: average number of MAPs per processor, RCP vs MPO, for sparse
// Cholesky under 75/50/40/25 % of TOT. Cell format "rcp/mpo" as in the
// paper ("inf" where non-executable).
//
// Paper:
//   p    75%    50%        40%      25%
//   2    4/3    inf/inf    inf/inf  inf/inf
//   4    2/2    7.8/4      inf/7.3  inf/inf
//   8    2/2    3.3/3      5.3/4    inf/inf
//   16   2/2    3/2.9      3.9/3.3  8.3/6.6
//   32   2/2    2.22/2.19  3/3      5.6/5.2
#include <cstdio>

#include "common.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

int main(int argc, char** argv) {
  Flags flags;
  if (bench::parse_common_flags(flags, argc, argv)) return 0;
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const auto procs = flags.get_int_list("procs");

  bench::print_header(
      "Table 5: average #MAPs per processor, RCP vs MPO, sparse Cholesky",
      num::bcsstk24_like(scale).name,
      "cell = avg#MAPs(RCP) / avg#MAPs(MPO); 'inf' = non-executable");

  TextTable table({"p", "75%", "50%", "40%", "25%"});
  const double fractions[] = {0.75, 0.5, 0.4, 0.25};
  const num::Workload workload = num::bcsstk24_like(scale);
  for (const auto p : procs) {
    const bench::Instance inst =
        bench::make_cholesky_instance(workload, block, static_cast<int>(p));
    const auto rcp = bench::make_schedule(inst, bench::OrderingKind::kRcp);
    const auto mpo = bench::make_schedule(inst, bench::OrderingKind::kMpo);
    const auto tot = bench::tot_mem(inst, rcp);
    std::vector<std::string> row = {std::to_string(p)};
    for (const double f : fractions) {
      const auto capacity =
          static_cast<std::int64_t>(static_cast<double>(tot) * f);
      const bench::SimResult a = bench::run_sim(inst, rcp, capacity);
      const bench::SimResult b = bench::run_sim(inst, mpo, capacity);
      row.push_back(bench::maps_cell(a) + "/" + bench::maps_cell(b));
    }
    table.add_row(std::move(row));
  }
  bench::emit_table(flags, "table5_map_counts", table);
  std::printf(
      "\nexpected shape: MPO needs no more MAPs than RCP (usually fewer), "
      "and MAP counts\nfall as p grows and rise as memory shrinks.\n");
  return 0;
}
