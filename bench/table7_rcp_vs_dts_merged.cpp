// Table 7: parallel-time comparison RCP vs DTS *with slice merging* (the
// merge budget comes from the known capacity, Figure 6). Cell =
// PT_DTSmerged / PT_RCP − 1; "*" = only DTS+merge runs.
//
// Paper's finding: DTS with slice merging is very close to RCP in time
// (±20 %) while executable in many cells where RCP is not — the heuristic
// of choice when the capacity is known.
#include <cstdio>

#include "common.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

namespace {

void run_panel(const char* title, bool lu, double scale, sparse::Index block,
               const std::vector<std::int64_t>& procs, JsonValue& panels) {
  std::printf("--- %s (RCP vs DTS+merge) ---\n", title);
  TextTable table({"p", "75%", "50%", "40%", "25%"});
  const double fractions[] = {0.75, 0.5, 0.4, 0.25};
  for (const auto p : procs) {
    const num::Workload workload =
        lu ? num::goodwin_like(scale) : num::bcsstk24_like(scale);
    const bench::Instance inst =
        lu ? bench::make_lu_instance(workload, block, static_cast<int>(p))
           : bench::make_cholesky_instance(workload, block,
                                           static_cast<int>(p));
    const auto rcp = bench::make_schedule(inst, bench::OrderingKind::kRcp);
    const auto tot = bench::tot_mem(inst, rcp);
    const auto max_perm = bench::max_permanent_bytes(inst, rcp);
    std::vector<std::string> row = {std::to_string(p)};
    for (const double f : fractions) {
      const auto capacity =
          static_cast<std::int64_t>(static_cast<double>(tot) * f);
      // Merge budget = what the capacity leaves for volatiles.
      const auto budget = std::max<std::int64_t>(0, capacity - max_perm);
      const auto merged = bench::make_schedule(
          inst, bench::OrderingKind::kDtsMerged, budget);
      const bench::SimResult a = bench::run_sim(inst, rcp, capacity);
      const bench::SimResult b = bench::run_sim(inst, merged, capacity);
      row.push_back(bench::compare_cell(a, b));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  panels[lu ? "lu" : "cholesky"] = bench::table_to_json(table);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (bench::parse_common_flags(flags, argc, argv)) return 0;
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const auto procs = flags.get_int_list("procs");

  bench::print_header(
      "Table 7: RCP vs DTS with slice merging, parallel time under memory "
      "constraints",
      "(a) " + num::bcsstk24_like(scale).name + "   (b) " +
          num::goodwin_like(scale).name,
      "cell = PT_DTS+merge/PT_RCP - 1;  '*' = DTS+merge executable where "
      "RCP is not; '-' = neither");
  JsonValue panels = JsonValue::object();
  run_panel("(a) sparse Cholesky", /*lu=*/false, scale, block, procs, panels);
  run_panel("(b) sparse LU", /*lu=*/true, scale, block, procs, panels);
  std::printf(
      "expected shape: merged DTS within ~20%% of RCP (merging restores "
      "critical-path\nfreedom), and executable in more cells than RCP.\n");
  JsonValue doc = JsonValue::object();
  doc["artifact"] = "table7_rcp_vs_dts_merged";
  doc["scale"] = scale;
  doc["block"] = static_cast<std::int64_t>(block);
  doc["panels"] = std::move(panels);
  bench::write_json_file(flags, doc);
  return 0;
}
