// Table 1: average ratio of per-processor memory usage (permanent +
// volatile, no recycling — the original RAPID allocation discipline) over
// the lower bound S1/p, for sparse Cholesky, p = 2..16.
//
// Paper values:  p:      2     4     8     16
//                ratio:  1.88  3.19  4.64  5.72
#include <cstdio>

#include "common.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

int main(int argc, char** argv) {
  Flags flags;
  if (bench::parse_common_flags(flags, argc, argv)) return 0;
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));

  const double paper[] = {1.88, 3.19, 4.64, 5.72};
  bench::print_header(
      "Table 1: per-processor memory over S1/p, sparse Cholesky (RCP, no "
      "recycling)",
      num::bcsstk24_like(scale).name + " + " + num::bcsstk15_like(scale).name +
          " (averaged)",
      "ratio = avg over processors of (perm + volatile bytes) / (S1/p)");

  TextTable table({"#processors", "paper", "measured"});
  int row = 0;
  for (int p : {2, 4, 8, 16}) {
    double ratio_sum = 0.0;
    int count = 0;
    for (const num::Workload& w :
         {num::bcsstk24_like(scale), num::bcsstk15_like(scale)}) {
      const bench::Instance inst = bench::make_cholesky_instance(w, block, p);
      const auto schedule =
          bench::make_schedule(inst, bench::OrderingKind::kRcp);
      const auto liveness = sched::analyze_liveness(*inst.graph, schedule);
      const double lower = static_cast<double>(inst.sequential_space()) / p;
      double avg_usage = 0.0;
      for (const auto& proc : liveness.procs) {
        avg_usage += static_cast<double>(proc.total_bytes);
      }
      avg_usage /= p;
      ratio_sum += avg_usage / lower;
      ++count;
    }
    table.add_row({std::to_string(p), fixed(paper[row++], 2),
                   fixed(ratio_sum / count, 2)});
  }
  bench::emit_table(flags, "table1_memory_ratio", table);
  std::printf(
      "\nexpected shape: the ratio grows with p — more processors mean more "
      "remote reads, hence more volatile replicas per processor.\n");
  return 0;
}
