// Table 4: parallel-time comparison RCP vs MPO under memory constraints
// (75/50/40/25 % of TOT). Cell = PT_MPO / PT_RCP − 1; "*" = only MPO
// executable; "-" = neither executable.
//
// Paper's finding: the difference is negligible (±10 %) and MPO sometimes
// wins outright, while being far more memory scalable — plus MPO runs in
// cells where RCP cannot.
#include <cstdio>

#include "common.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

namespace {

void run_panel(const char* title, bool lu, double scale, sparse::Index block,
               const std::vector<std::int64_t>& procs, JsonValue& panels) {
  std::printf("--- %s (RCP vs MPO) ---\n", title);
  TextTable table({"p", "75%", "50%", "40%", "25%"});
  const double fractions[] = {0.75, 0.5, 0.4, 0.25};
  for (const auto p : procs) {
    const num::Workload workload =
        lu ? num::goodwin_like(scale) : num::bcsstk24_like(scale);
    const bench::Instance inst =
        lu ? bench::make_lu_instance(workload, block, static_cast<int>(p))
           : bench::make_cholesky_instance(workload, block,
                                           static_cast<int>(p));
    const auto rcp = bench::make_schedule(inst, bench::OrderingKind::kRcp);
    const auto mpo = bench::make_schedule(inst, bench::OrderingKind::kMpo);
    // The paper's constraint base is TOT of the time-efficient schedule.
    const auto tot = bench::tot_mem(inst, rcp);
    std::vector<std::string> row = {std::to_string(p)};
    for (const double f : fractions) {
      const auto capacity =
          static_cast<std::int64_t>(static_cast<double>(tot) * f);
      const bench::SimResult a = bench::run_sim(inst, rcp, capacity);
      const bench::SimResult b = bench::run_sim(inst, mpo, capacity);
      row.push_back(bench::compare_cell(a, b));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  panels[lu ? "lu" : "cholesky"] = bench::table_to_json(table);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (bench::parse_common_flags(flags, argc, argv)) return 0;
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const auto procs = flags.get_int_list("procs");

  bench::print_header(
      "Table 4: RCP vs MPO parallel time under memory constraints",
      "(a) " + num::bcsstk24_like(scale).name + "   (b) " +
          num::goodwin_like(scale).name,
      "cell = PT_MPO/PT_RCP - 1;  '*' = MPO executable where RCP is not; "
      "'-' = neither");
  JsonValue panels = JsonValue::object();
  run_panel("(a) sparse Cholesky", /*lu=*/false, scale, block, procs, panels);
  run_panel("(b) sparse LU", /*lu=*/true, scale, block, procs, panels);
  std::printf(
      "expected shape: small differences either way; MPO executable in "
      "strictly more cells\n(fewer MAPs + better temporal locality offset "
      "its weaker critical-path use).\n");
  JsonValue doc = JsonValue::object();
  doc["artifact"] = "table4_rcp_vs_mpo";
  doc["scale"] = scale;
  doc["block"] = static_cast<std::int64_t>(block);
  doc["panels"] = std::move(panels);
  bench::write_json_file(flags, doc);
  return 0;
}
