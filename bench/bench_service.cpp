// Multi-tenant runtime-service benchmark. Two rows, one artifact
// (BENCH_service.json):
//
//   steady   — an open-loop mixed workload (grid + cholesky + lu specs,
//              mixed priorities and deadlines) arriving at a fixed rate
//              within budget: measures service throughput (runs/sec),
//              per-run latency (p50/p99 of submit → terminal), and the
//              plan-cache hit rate that makes small runs cheap.
//   overload — a deliberate burst into a tiny budget and a short bounded
//              queue with deadline pressure: proves graceful degradation.
//              The row must show a *bounded* peak queue depth and a
//              *nonzero* shed count — unbounded growth or silent drops are
//              findings, and every non-completed run still carries its
//              structured admission/outcome report.
//   telemetry_guard — the same closed-loop steady workload run with the
//              telemetry plane off and on (registry bound + background
//              sampler writing snapshots every 50 ms). Best-of-N
//              throughput each way; telemetry_overhead_pct above the
//              --max_overhead_pct gate (default 3%) is a finding. This is
//              the regression fence that keeps "observability on" a
//              default, not a tax.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "rapid/obs/telemetry.hpp"
#include "rapid/rt/shm_health.hpp"
#include "rapid/support/exit_codes.hpp"
#include "rapid/support/flags.hpp"
#include "rapid/support/json.hpp"
#include "rapid/support/stopwatch.hpp"
#include "rapid/support/str.hpp"
#include "rapid/support/table.hpp"
#include "rapid/svc/service.hpp"

using namespace rapid;

namespace {

std::int64_t percentile(std::vector<std::int64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct RowResult {
  std::string name;
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  double runs_per_sec = 0.0;
  std::int64_t p50_us = 0;
  std::int64_t p99_us = 0;
  double cache_hit_rate = 0.0;
  svc::ServiceReport report;
  bool numerics_bad = false;
};

JsonValue row_json(const RowResult& r) {
  JsonValue j = JsonValue::object();
  j["row"] = r.name;
  j["submitted"] = r.submitted;
  j["completed"] = r.completed;
  j["runs_per_sec"] = r.runs_per_sec;
  j["latency_p50_us"] = r.p50_us;
  j["latency_p99_us"] = r.p99_us;
  j["cache_hit_rate"] = r.cache_hit_rate;
  j["numerics_bad"] = r.numerics_bad;
  j["service"] = r.report.to_json();
  return j;
}

/// Submits `requests` open-loop at `arrival_us` spacing, waits for all,
/// and aggregates. Latency = submit → terminal for every run that ran.
RowResult drive(const std::string& name, svc::RuntimeService& service,
                const std::vector<svc::RunRequest>& requests,
                std::int64_t arrival_us) {
  RowResult row;
  row.name = name;
  Stopwatch wall;
  std::vector<std::int64_t> ids;
  ids.reserve(requests.size());
  for (const svc::RunRequest& req : requests) {
    ids.push_back(service.submit(req));
    if (arrival_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(arrival_us));
    }
  }
  std::vector<std::int64_t> latencies;
  for (const std::int64_t id : ids) {
    const svc::RunRecord& record = service.wait(id);
    ++row.submitted;
    if (record.state == svc::RunState::kCompleted) {
      ++row.completed;
      latencies.push_back(record.wait_us + record.exec_us);
      if (!record.numerics_ok) row.numerics_bad = true;
    }
  }
  const double seconds = wall.seconds();
  row.runs_per_sec =
      seconds > 0 ? static_cast<double>(row.completed) / seconds : 0.0;
  row.p50_us = percentile(latencies, 0.50);
  row.p99_us = percentile(latencies, 0.99);
  row.report = service.report();
  const std::int64_t lookups = row.report.cache_hits + row.report.cache_misses;
  row.cache_hit_rate =
      lookups > 0
          ? static_cast<double>(row.report.cache_hits) /
                static_cast<double>(lookups)
          : 0.0;
  return row;
}

/// One closed-loop steady pass; with `telemetry` the service is bound to a
/// registry and a background sampler snapshots it to `metrics_path` every
/// 50 ms (the production rapid_serve configuration, sped up so several
/// snapshots land even in a short pass).
double guard_pass(bool telemetry, std::size_t runs, std::int32_t workers,
                  const std::string& metrics_path) {
  const std::vector<std::string> mix = {
      "grid:rows=8,cols=8,procs=4",
      "grid:rows=6,cols=10,procs=4",
  };
  std::vector<svc::RunRequest> requests;
  for (std::size_t i = 0; i < runs; ++i) {
    svc::RunRequest req;
    req.spec = mix[i % mix.size()];
    req.config.capacity_per_proc = 1 << 20;
    requests.push_back(std::move(req));
  }
  svc::ServiceOptions sopts;
  sopts.workers = workers;
  sopts.queue_limit = static_cast<std::int32_t>(runs) + 1;
  svc::RuntimeService service(sopts);

  obs::MetricsRegistry registry;
  std::unique_ptr<obs::TelemetrySampler> sampler;
  if (telemetry) {
    service.bind_telemetry(registry);
    obs::TelemetrySamplerOptions topts;
    topts.path = metrics_path;
    topts.interval_ms = 50;
    sampler = std::make_unique<obs::TelemetrySampler>(registry, topts);
    sampler->add_probe(
        [&service](obs::MetricsRegistry&) { service.sample_telemetry(); });
    sampler->add_probe(
        [](obs::MetricsRegistry& reg) { rt::sample_shm_health(reg); });
    sampler->start();
  }
  const RowResult row = drive(telemetry ? "guard_on" : "guard_off", service,
                              requests, /*arrival_us=*/0);
  if (sampler) sampler->stop();
  return row.runs_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("runs", "48", "steady-row request count");
  flags.define("workers", "4", "service worker pool size");
  flags.define("arrival_us", "2000",
               "open-loop inter-arrival spacing for the steady row");
  flags.define("overload_runs", "16", "overload-row burst size");
  flags.define("guard_runs", "24",
               "telemetry-guard row request count per pass");
  flags.define("guard_passes", "3",
               "best-of-N passes per telemetry setting (damps scheduler "
               "noise)");
  flags.define("max_overhead_pct", "3",
               "telemetry_overhead_pct above this is a finding");
  flags.define("telemetry_file", "/tmp/bench_service_telemetry.prom",
               "snapshot path the guard row's sampler writes to");
  flags.define("json", "", "write BENCH_service.json here");
  try {
    flags.parse(argc, argv);
  } catch (const rapid::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitInfraError;
  }
  if (flags.help_requested()) return kExitOk;

  try {
    const auto n = static_cast<std::size_t>(flags.get_int("runs"));

    // -- steady row -------------------------------------------------------
    // A small spec mix: two grid shapes (exact integers, cheap), one
    // cholesky and one lu (real kernels) — deadlines generous, priorities
    // mixed, so the row measures throughput, not shedding.
    const std::vector<std::string> mix = {
        "grid:rows=8,cols=8,procs=4",
        "grid:rows=6,cols=10,procs=4",
        "cholesky:grid=8,block=4,procs=4",
        "lu:grid=8,block=4,procs=4",
    };
    std::vector<svc::RunRequest> steady;
    for (std::size_t i = 0; i < n; ++i) {
      svc::RunRequest req;
      req.spec = mix[i % mix.size()];
      req.config.capacity_per_proc = 1 << 20;
      req.priority = static_cast<std::int32_t>(i % 3);
      req.deadline_us = 30'000'000;  // generous: latency, not expiry
      steady.push_back(std::move(req));
    }
    svc::ServiceOptions sopts;
    sopts.workers = static_cast<std::int32_t>(flags.get_int("workers"));
    sopts.queue_limit = static_cast<std::int32_t>(n) + 1;
    RowResult steady_row;
    {
      svc::RuntimeService service(sopts);
      steady_row =
          drive("steady", service, steady, flags.get_int("arrival_us"));
    }

    // -- overload row -----------------------------------------------------
    // One worker, a budget that fits one run, a 4-deep queue, and a burst
    // with tight deadlines: the service must shed (bounded queue), expire
    // (deadline pressure), and keep completing what it admitted.
    const auto burst =
        static_cast<std::size_t>(flags.get_int("overload_runs"));
    std::vector<svc::RunRequest> overload;
    for (std::size_t i = 0; i < burst; ++i) {
      svc::RunRequest req;
      req.spec = "grid:rows=8,cols=8,procs=4,delay=1500";
      req.config.capacity_per_proc = 1 << 20;
      req.deadline_us = 400'000 + static_cast<std::int64_t>(i) * 50'000;
      overload.push_back(std::move(req));
    }
    svc::ServiceOptions oopts;
    oopts.workers = 1;
    oopts.queue_limit = 4;
    oopts.budget_bytes = 1 << 20;
    RowResult overload_row;
    {
      svc::RuntimeService service(oopts);
      overload_row = drive("overload", service, overload, 0);
    }

    // -- telemetry guard row ----------------------------------------------
    // Alternate off/on passes so clock drift and cache warm-up hit both
    // sides equally; compare best-of-N (steady-state capability, not the
    // noisiest pass).
    const auto guard_runs =
        static_cast<std::size_t>(flags.get_int("guard_runs"));
    const std::int64_t guard_passes =
        std::max<std::int64_t>(flags.get_int("guard_passes"), 1);
    const double max_overhead_pct =
        static_cast<double>(flags.get_int("max_overhead_pct"));
    double best_off = 0.0;
    double best_on = 0.0;
    for (std::int64_t pass = 0; pass < guard_passes; ++pass) {
      best_off = std::max(
          best_off, guard_pass(false, guard_runs, sopts.workers, ""));
      best_on = std::max(
          best_on, guard_pass(true, guard_runs, sopts.workers,
                              flags.get("telemetry_file")));
    }
    const double overhead_pct =
        best_off > 0.0
            ? std::max(0.0, 100.0 * (best_off - best_on) / best_off)
            : 0.0;

    TextTable table({"row", "submitted", "completed", "runs/s", "p50 ms",
                     "p99 ms", "cache hit%", "shed", "expired", "peak q"});
    for (const RowResult* r : {&steady_row, &overload_row}) {
      table.add_row({r->name, std::to_string(r->submitted),
                     std::to_string(r->completed),
                     fixed(r->runs_per_sec, 1),
                     fixed(static_cast<double>(r->p50_us) / 1000.0, 2),
                     fixed(static_cast<double>(r->p99_us) / 1000.0, 2),
                     fixed(100.0 * r->cache_hit_rate, 1),
                     std::to_string(r->report.shed),
                     std::to_string(r->report.expired),
                     std::to_string(r->report.peak_queue_depth)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\ntelemetry guard: %.1f runs/s off, %.1f runs/s on, "
                "overhead %.2f%% (gate %.0f%%)\n",
                best_off, best_on, overhead_pct, max_overhead_pct);

    JsonValue doc = JsonValue::object();
    doc["artifact"] = "bench_service";
    JsonValue rows = JsonValue::array();
    rows.push_back(row_json(steady_row));
    rows.push_back(row_json(overload_row));
    {
      JsonValue guard = JsonValue::object();
      guard["row"] = "telemetry_guard";
      guard["passes"] = guard_passes;
      guard["runs_per_pass"] = static_cast<std::int64_t>(guard_runs);
      guard["runs_per_sec_telemetry_off"] = best_off;
      guard["runs_per_sec_telemetry_on"] = best_on;
      guard["telemetry_overhead_pct"] = overhead_pct;
      guard["max_overhead_pct"] = max_overhead_pct;
      rows.push_back(std::move(guard));
    }
    doc["rows"] = std::move(rows);
    if (!flags.get("json").empty()) {
      std::FILE* f = std::fopen(flags.get("json").c_str(), "w");
      RAPID_CHECK(f != nullptr,
                  cat("cannot open --json path ", flags.get("json")));
      const std::string text = doc.dump();
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("\njson results written to %s\n",
                  flags.get("json").c_str());
    }

    // Findings: wrong numerics anywhere; an overload row that failed to
    // degrade gracefully (nothing shed => the bounded queue never bound, or
    // the queue outgrew its limit).
    bool findings = steady_row.numerics_bad || overload_row.numerics_bad;
    if (steady_row.completed == 0) findings = true;
    if (overload_row.report.shed == 0 ||
        overload_row.report.peak_queue_depth > oopts.queue_limit) {
      std::fprintf(stderr,
                   "bench_service: overload row did not degrade gracefully "
                   "(shed=%lld, peak queue=%d, limit=%d)\n",
                   static_cast<long long>(overload_row.report.shed),
                   overload_row.report.peak_queue_depth, oopts.queue_limit);
      findings = true;
    }
    if (overhead_pct > max_overhead_pct) {
      std::fprintf(stderr,
                   "bench_service: telemetry overhead %.2f%% exceeds the "
                   "%.0f%% gate (off %.1f runs/s, on %.1f runs/s)\n",
                   overhead_pct, max_overhead_pct, best_off, best_on);
      findings = true;
    }
    return findings ? kExitFindings : kExitOk;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_service: %s\n", e.what());
    return kExitInfraError;
  }
}
