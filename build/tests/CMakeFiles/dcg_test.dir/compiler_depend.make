# Empty compiler generated dependencies file for dcg_test.
# This may be replaced when dependencies are built.
