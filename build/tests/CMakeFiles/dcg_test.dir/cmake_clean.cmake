file(REMOVE_RECURSE
  "CMakeFiles/dcg_test.dir/dcg_test.cpp.o"
  "CMakeFiles/dcg_test.dir/dcg_test.cpp.o.d"
  "dcg_test"
  "dcg_test.pdb"
  "dcg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
