file(REMOVE_RECURSE
  "CMakeFiles/liveness_test.dir/liveness_test.cpp.o"
  "CMakeFiles/liveness_test.dir/liveness_test.cpp.o.d"
  "liveness_test"
  "liveness_test.pdb"
  "liveness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
