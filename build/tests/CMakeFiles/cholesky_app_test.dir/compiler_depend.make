# Empty compiler generated dependencies file for cholesky_app_test.
# This may be replaced when dependencies are built.
