file(REMOVE_RECURSE
  "CMakeFiles/cholesky_app_test.dir/cholesky_app_test.cpp.o"
  "CMakeFiles/cholesky_app_test.dir/cholesky_app_test.cpp.o.d"
  "cholesky_app_test"
  "cholesky_app_test.pdb"
  "cholesky_app_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cholesky_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
