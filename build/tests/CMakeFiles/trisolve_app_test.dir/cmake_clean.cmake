file(REMOVE_RECURSE
  "CMakeFiles/trisolve_app_test.dir/trisolve_app_test.cpp.o"
  "CMakeFiles/trisolve_app_test.dir/trisolve_app_test.cpp.o.d"
  "trisolve_app_test"
  "trisolve_app_test.pdb"
  "trisolve_app_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trisolve_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
