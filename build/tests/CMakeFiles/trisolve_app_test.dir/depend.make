# Empty dependencies file for trisolve_app_test.
# This may be replaced when dependencies are built.
