# Empty dependencies file for lu_app_test.
# This may be replaced when dependencies are built.
