file(REMOVE_RECURSE
  "CMakeFiles/lu_app_test.dir/lu_app_test.cpp.o"
  "CMakeFiles/lu_app_test.dir/lu_app_test.cpp.o.d"
  "lu_app_test"
  "lu_app_test.pdb"
  "lu_app_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lu_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
