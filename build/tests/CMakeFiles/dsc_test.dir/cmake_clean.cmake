file(REMOVE_RECURSE
  "CMakeFiles/dsc_test.dir/dsc_test.cpp.o"
  "CMakeFiles/dsc_test.dir/dsc_test.cpp.o.d"
  "dsc_test"
  "dsc_test.pdb"
  "dsc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
