# Empty compiler generated dependencies file for dsc_test.
# This may be replaced when dependencies are built.
