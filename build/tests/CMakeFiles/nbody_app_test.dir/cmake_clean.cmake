file(REMOVE_RECURSE
  "CMakeFiles/nbody_app_test.dir/nbody_app_test.cpp.o"
  "CMakeFiles/nbody_app_test.dir/nbody_app_test.cpp.o.d"
  "nbody_app_test"
  "nbody_app_test.pdb"
  "nbody_app_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbody_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
