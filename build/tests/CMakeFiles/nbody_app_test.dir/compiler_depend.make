# Empty compiler generated dependencies file for nbody_app_test.
# This may be replaced when dependencies are built.
