# Empty dependencies file for map_engine_test.
# This may be replaced when dependencies are built.
