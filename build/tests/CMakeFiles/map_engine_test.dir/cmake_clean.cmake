file(REMOVE_RECURSE
  "CMakeFiles/map_engine_test.dir/map_engine_test.cpp.o"
  "CMakeFiles/map_engine_test.dir/map_engine_test.cpp.o.d"
  "map_engine_test"
  "map_engine_test.pdb"
  "map_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
