# Empty dependencies file for app_sweep_test.
# This may be replaced when dependencies are built.
