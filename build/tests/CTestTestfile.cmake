# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_market_test[1]_include.cmake")
include("/root/repo/build/tests/symbolic_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/dcg_test[1]_include.cmake")
include("/root/repo/build/tests/arena_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/dsc_test[1]_include.cmake")
include("/root/repo/build/tests/liveness_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/map_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_executor_test[1]_include.cmake")
include("/root/repo/build/tests/threaded_executor_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/cholesky_app_test[1]_include.cmake")
include("/root/repo/build/tests/lu_app_test[1]_include.cmake")
include("/root/repo/build/tests/trisolve_app_test[1]_include.cmake")
include("/root/repo/build/tests/nbody_app_test[1]_include.cmake")
include("/root/repo/build/tests/paper_example_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/app_sweep_test[1]_include.cmake")
