# Empty compiler generated dependencies file for sparse_cholesky.
# This may be replaced when dependencies are built.
