file(REMOVE_RECURSE
  "CMakeFiles/nbody_galaxy.dir/nbody_galaxy.cpp.o"
  "CMakeFiles/nbody_galaxy.dir/nbody_galaxy.cpp.o.d"
  "nbody_galaxy"
  "nbody_galaxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbody_galaxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
