file(REMOVE_RECURSE
  "CMakeFiles/newton_method.dir/newton_method.cpp.o"
  "CMakeFiles/newton_method.dir/newton_method.cpp.o.d"
  "newton_method"
  "newton_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newton_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
