# Empty dependencies file for newton_method.
# This may be replaced when dependencies are built.
