file(REMOVE_RECURSE
  "CMakeFiles/memory_pressure.dir/memory_pressure.cpp.o"
  "CMakeFiles/memory_pressure.dir/memory_pressure.cpp.o.d"
  "memory_pressure"
  "memory_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
