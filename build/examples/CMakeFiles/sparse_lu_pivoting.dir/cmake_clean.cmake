file(REMOVE_RECURSE
  "CMakeFiles/sparse_lu_pivoting.dir/sparse_lu_pivoting.cpp.o"
  "CMakeFiles/sparse_lu_pivoting.dir/sparse_lu_pivoting.cpp.o.d"
  "sparse_lu_pivoting"
  "sparse_lu_pivoting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_lu_pivoting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
