# Empty dependencies file for sparse_lu_pivoting.
# This may be replaced when dependencies are built.
