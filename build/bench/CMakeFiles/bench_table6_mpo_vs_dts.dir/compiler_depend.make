# Empty compiler generated dependencies file for bench_table6_mpo_vs_dts.
# This may be replaced when dependencies are built.
