file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_mpo_vs_dts.dir/table6_mpo_vs_dts.cpp.o"
  "CMakeFiles/bench_table6_mpo_vs_dts.dir/table6_mpo_vs_dts.cpp.o.d"
  "bench_table6_mpo_vs_dts"
  "bench_table6_mpo_vs_dts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_mpo_vs_dts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
