file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cholesky_overhead.dir/table2_cholesky_overhead.cpp.o"
  "CMakeFiles/bench_table2_cholesky_overhead.dir/table2_cholesky_overhead.cpp.o.d"
  "bench_table2_cholesky_overhead"
  "bench_table2_cholesky_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cholesky_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
