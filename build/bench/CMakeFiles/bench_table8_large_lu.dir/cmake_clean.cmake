file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_large_lu.dir/table8_large_lu.cpp.o"
  "CMakeFiles/bench_table8_large_lu.dir/table8_large_lu.cpp.o.d"
  "bench_table8_large_lu"
  "bench_table8_large_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_large_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
