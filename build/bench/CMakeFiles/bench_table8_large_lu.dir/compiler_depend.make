# Empty compiler generated dependencies file for bench_table8_large_lu.
# This may be replaced when dependencies are built.
