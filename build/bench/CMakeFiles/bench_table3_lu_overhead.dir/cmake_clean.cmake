file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_lu_overhead.dir/table3_lu_overhead.cpp.o"
  "CMakeFiles/bench_table3_lu_overhead.dir/table3_lu_overhead.cpp.o.d"
  "bench_table3_lu_overhead"
  "bench_table3_lu_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_lu_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
