file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_rcp_vs_dts_merged.dir/table7_rcp_vs_dts_merged.cpp.o"
  "CMakeFiles/bench_table7_rcp_vs_dts_merged.dir/table7_rcp_vs_dts_merged.cpp.o.d"
  "bench_table7_rcp_vs_dts_merged"
  "bench_table7_rcp_vs_dts_merged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_rcp_vs_dts_merged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
