# Empty dependencies file for bench_table7_rcp_vs_dts_merged.
# This may be replaced when dependencies are built.
