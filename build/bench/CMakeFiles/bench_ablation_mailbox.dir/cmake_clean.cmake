file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mailbox.dir/ablation_mailbox.cpp.o"
  "CMakeFiles/bench_ablation_mailbox.dir/ablation_mailbox.cpp.o.d"
  "bench_ablation_mailbox"
  "bench_ablation_mailbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mailbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
