# Empty dependencies file for bench_ablation_mailbox.
# This may be replaced when dependencies are built.
