file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_map_counts.dir/table5_map_counts.cpp.o"
  "CMakeFiles/bench_table5_map_counts.dir/table5_map_counts.cpp.o.d"
  "bench_table5_map_counts"
  "bench_table5_map_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_map_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
