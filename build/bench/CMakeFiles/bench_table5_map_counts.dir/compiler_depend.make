# Empty compiler generated dependencies file for bench_table5_map_counts.
# This may be replaced when dependencies are built.
