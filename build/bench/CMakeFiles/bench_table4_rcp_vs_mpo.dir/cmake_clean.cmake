file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_rcp_vs_mpo.dir/table4_rcp_vs_mpo.cpp.o"
  "CMakeFiles/bench_table4_rcp_vs_mpo.dir/table4_rcp_vs_mpo.cpp.o.d"
  "bench_table4_rcp_vs_mpo"
  "bench_table4_rcp_vs_mpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_rcp_vs_mpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
