# Empty compiler generated dependencies file for bench_table4_rcp_vs_mpo.
# This may be replaced when dependencies are built.
