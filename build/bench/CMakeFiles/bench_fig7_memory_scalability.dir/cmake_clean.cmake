file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_memory_scalability.dir/fig7_memory_scalability.cpp.o"
  "CMakeFiles/bench_fig7_memory_scalability.dir/fig7_memory_scalability.cpp.o.d"
  "bench_fig7_memory_scalability"
  "bench_fig7_memory_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_memory_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
