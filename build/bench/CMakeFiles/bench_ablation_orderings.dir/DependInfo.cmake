
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_orderings.cpp" "bench/CMakeFiles/bench_ablation_orderings.dir/ablation_orderings.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_orderings.dir/ablation_orderings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rapid/num/CMakeFiles/rapid_num.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/rt/CMakeFiles/rapid_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/sched/CMakeFiles/rapid_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/graph/CMakeFiles/rapid_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/sparse/CMakeFiles/rapid_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/mem/CMakeFiles/rapid_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/machine/CMakeFiles/rapid_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/support/CMakeFiles/rapid_support.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
