# Empty compiler generated dependencies file for bench_ablation_orderings.
# This may be replaced when dependencies are built.
