file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_orderings.dir/ablation_orderings.cpp.o"
  "CMakeFiles/bench_ablation_orderings.dir/ablation_orderings.cpp.o.d"
  "bench_ablation_orderings"
  "bench_ablation_orderings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_orderings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
