file(REMOVE_RECURSE
  "librapid_graph.a"
)
