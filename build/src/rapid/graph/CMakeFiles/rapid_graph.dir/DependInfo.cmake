
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rapid/graph/dcg.cpp" "src/rapid/graph/CMakeFiles/rapid_graph.dir/dcg.cpp.o" "gcc" "src/rapid/graph/CMakeFiles/rapid_graph.dir/dcg.cpp.o.d"
  "/root/repo/src/rapid/graph/dot.cpp" "src/rapid/graph/CMakeFiles/rapid_graph.dir/dot.cpp.o" "gcc" "src/rapid/graph/CMakeFiles/rapid_graph.dir/dot.cpp.o.d"
  "/root/repo/src/rapid/graph/task_graph.cpp" "src/rapid/graph/CMakeFiles/rapid_graph.dir/task_graph.cpp.o" "gcc" "src/rapid/graph/CMakeFiles/rapid_graph.dir/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rapid/support/CMakeFiles/rapid_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
