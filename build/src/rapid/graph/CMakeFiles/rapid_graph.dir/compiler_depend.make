# Empty compiler generated dependencies file for rapid_graph.
# This may be replaced when dependencies are built.
