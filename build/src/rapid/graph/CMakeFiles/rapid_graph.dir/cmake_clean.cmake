file(REMOVE_RECURSE
  "CMakeFiles/rapid_graph.dir/dcg.cpp.o"
  "CMakeFiles/rapid_graph.dir/dcg.cpp.o.d"
  "CMakeFiles/rapid_graph.dir/dot.cpp.o"
  "CMakeFiles/rapid_graph.dir/dot.cpp.o.d"
  "CMakeFiles/rapid_graph.dir/task_graph.cpp.o"
  "CMakeFiles/rapid_graph.dir/task_graph.cpp.o.d"
  "librapid_graph.a"
  "librapid_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
