# Empty compiler generated dependencies file for rapid_mem.
# This may be replaced when dependencies are built.
