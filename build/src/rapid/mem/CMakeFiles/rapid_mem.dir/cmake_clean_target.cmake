file(REMOVE_RECURSE
  "librapid_mem.a"
)
