file(REMOVE_RECURSE
  "CMakeFiles/rapid_mem.dir/arena.cpp.o"
  "CMakeFiles/rapid_mem.dir/arena.cpp.o.d"
  "librapid_mem.a"
  "librapid_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
