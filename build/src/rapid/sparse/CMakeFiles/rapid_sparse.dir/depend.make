# Empty dependencies file for rapid_sparse.
# This may be replaced when dependencies are built.
