file(REMOVE_RECURSE
  "librapid_sparse.a"
)
