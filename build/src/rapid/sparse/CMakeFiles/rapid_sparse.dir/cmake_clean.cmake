file(REMOVE_RECURSE
  "CMakeFiles/rapid_sparse.dir/blocks.cpp.o"
  "CMakeFiles/rapid_sparse.dir/blocks.cpp.o.d"
  "CMakeFiles/rapid_sparse.dir/coo.cpp.o"
  "CMakeFiles/rapid_sparse.dir/coo.cpp.o.d"
  "CMakeFiles/rapid_sparse.dir/csc.cpp.o"
  "CMakeFiles/rapid_sparse.dir/csc.cpp.o.d"
  "CMakeFiles/rapid_sparse.dir/etree.cpp.o"
  "CMakeFiles/rapid_sparse.dir/etree.cpp.o.d"
  "CMakeFiles/rapid_sparse.dir/generators.cpp.o"
  "CMakeFiles/rapid_sparse.dir/generators.cpp.o.d"
  "CMakeFiles/rapid_sparse.dir/matrix_market.cpp.o"
  "CMakeFiles/rapid_sparse.dir/matrix_market.cpp.o.d"
  "CMakeFiles/rapid_sparse.dir/ordering.cpp.o"
  "CMakeFiles/rapid_sparse.dir/ordering.cpp.o.d"
  "CMakeFiles/rapid_sparse.dir/symbolic.cpp.o"
  "CMakeFiles/rapid_sparse.dir/symbolic.cpp.o.d"
  "librapid_sparse.a"
  "librapid_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
