
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rapid/sparse/blocks.cpp" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/blocks.cpp.o" "gcc" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/blocks.cpp.o.d"
  "/root/repo/src/rapid/sparse/coo.cpp" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/coo.cpp.o" "gcc" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/coo.cpp.o.d"
  "/root/repo/src/rapid/sparse/csc.cpp" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/csc.cpp.o" "gcc" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/csc.cpp.o.d"
  "/root/repo/src/rapid/sparse/etree.cpp" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/etree.cpp.o" "gcc" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/etree.cpp.o.d"
  "/root/repo/src/rapid/sparse/generators.cpp" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/generators.cpp.o" "gcc" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/generators.cpp.o.d"
  "/root/repo/src/rapid/sparse/matrix_market.cpp" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/matrix_market.cpp.o" "gcc" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/matrix_market.cpp.o.d"
  "/root/repo/src/rapid/sparse/ordering.cpp" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/ordering.cpp.o" "gcc" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/ordering.cpp.o.d"
  "/root/repo/src/rapid/sparse/symbolic.cpp" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/symbolic.cpp.o" "gcc" "src/rapid/sparse/CMakeFiles/rapid_sparse.dir/symbolic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rapid/support/CMakeFiles/rapid_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
