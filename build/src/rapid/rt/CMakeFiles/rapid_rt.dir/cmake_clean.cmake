file(REMOVE_RECURSE
  "CMakeFiles/rapid_rt.dir/map_engine.cpp.o"
  "CMakeFiles/rapid_rt.dir/map_engine.cpp.o.d"
  "CMakeFiles/rapid_rt.dir/plan.cpp.o"
  "CMakeFiles/rapid_rt.dir/plan.cpp.o.d"
  "CMakeFiles/rapid_rt.dir/report.cpp.o"
  "CMakeFiles/rapid_rt.dir/report.cpp.o.d"
  "CMakeFiles/rapid_rt.dir/sim_executor.cpp.o"
  "CMakeFiles/rapid_rt.dir/sim_executor.cpp.o.d"
  "CMakeFiles/rapid_rt.dir/threaded_executor.cpp.o"
  "CMakeFiles/rapid_rt.dir/threaded_executor.cpp.o.d"
  "librapid_rt.a"
  "librapid_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
