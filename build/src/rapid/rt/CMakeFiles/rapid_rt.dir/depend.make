# Empty dependencies file for rapid_rt.
# This may be replaced when dependencies are built.
