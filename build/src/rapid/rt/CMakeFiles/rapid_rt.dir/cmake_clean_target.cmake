file(REMOVE_RECURSE
  "librapid_rt.a"
)
