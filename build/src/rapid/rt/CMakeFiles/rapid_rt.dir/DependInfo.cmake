
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rapid/rt/map_engine.cpp" "src/rapid/rt/CMakeFiles/rapid_rt.dir/map_engine.cpp.o" "gcc" "src/rapid/rt/CMakeFiles/rapid_rt.dir/map_engine.cpp.o.d"
  "/root/repo/src/rapid/rt/plan.cpp" "src/rapid/rt/CMakeFiles/rapid_rt.dir/plan.cpp.o" "gcc" "src/rapid/rt/CMakeFiles/rapid_rt.dir/plan.cpp.o.d"
  "/root/repo/src/rapid/rt/report.cpp" "src/rapid/rt/CMakeFiles/rapid_rt.dir/report.cpp.o" "gcc" "src/rapid/rt/CMakeFiles/rapid_rt.dir/report.cpp.o.d"
  "/root/repo/src/rapid/rt/sim_executor.cpp" "src/rapid/rt/CMakeFiles/rapid_rt.dir/sim_executor.cpp.o" "gcc" "src/rapid/rt/CMakeFiles/rapid_rt.dir/sim_executor.cpp.o.d"
  "/root/repo/src/rapid/rt/threaded_executor.cpp" "src/rapid/rt/CMakeFiles/rapid_rt.dir/threaded_executor.cpp.o" "gcc" "src/rapid/rt/CMakeFiles/rapid_rt.dir/threaded_executor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rapid/sched/CMakeFiles/rapid_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/mem/CMakeFiles/rapid_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/machine/CMakeFiles/rapid_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/graph/CMakeFiles/rapid_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/support/CMakeFiles/rapid_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
