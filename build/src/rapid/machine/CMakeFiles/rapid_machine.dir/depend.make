# Empty dependencies file for rapid_machine.
# This may be replaced when dependencies are built.
