file(REMOVE_RECURSE
  "librapid_machine.a"
)
