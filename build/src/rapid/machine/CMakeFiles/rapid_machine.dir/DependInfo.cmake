
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rapid/machine/event_queue.cpp" "src/rapid/machine/CMakeFiles/rapid_machine.dir/event_queue.cpp.o" "gcc" "src/rapid/machine/CMakeFiles/rapid_machine.dir/event_queue.cpp.o.d"
  "/root/repo/src/rapid/machine/params.cpp" "src/rapid/machine/CMakeFiles/rapid_machine.dir/params.cpp.o" "gcc" "src/rapid/machine/CMakeFiles/rapid_machine.dir/params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rapid/support/CMakeFiles/rapid_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
