file(REMOVE_RECURSE
  "CMakeFiles/rapid_machine.dir/event_queue.cpp.o"
  "CMakeFiles/rapid_machine.dir/event_queue.cpp.o.d"
  "CMakeFiles/rapid_machine.dir/params.cpp.o"
  "CMakeFiles/rapid_machine.dir/params.cpp.o.d"
  "librapid_machine.a"
  "librapid_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
