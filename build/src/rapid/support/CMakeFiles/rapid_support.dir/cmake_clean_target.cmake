file(REMOVE_RECURSE
  "librapid_support.a"
)
