file(REMOVE_RECURSE
  "CMakeFiles/rapid_support.dir/check.cpp.o"
  "CMakeFiles/rapid_support.dir/check.cpp.o.d"
  "CMakeFiles/rapid_support.dir/flags.cpp.o"
  "CMakeFiles/rapid_support.dir/flags.cpp.o.d"
  "CMakeFiles/rapid_support.dir/log.cpp.o"
  "CMakeFiles/rapid_support.dir/log.cpp.o.d"
  "CMakeFiles/rapid_support.dir/str.cpp.o"
  "CMakeFiles/rapid_support.dir/str.cpp.o.d"
  "CMakeFiles/rapid_support.dir/table.cpp.o"
  "CMakeFiles/rapid_support.dir/table.cpp.o.d"
  "librapid_support.a"
  "librapid_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
