
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rapid/support/check.cpp" "src/rapid/support/CMakeFiles/rapid_support.dir/check.cpp.o" "gcc" "src/rapid/support/CMakeFiles/rapid_support.dir/check.cpp.o.d"
  "/root/repo/src/rapid/support/flags.cpp" "src/rapid/support/CMakeFiles/rapid_support.dir/flags.cpp.o" "gcc" "src/rapid/support/CMakeFiles/rapid_support.dir/flags.cpp.o.d"
  "/root/repo/src/rapid/support/log.cpp" "src/rapid/support/CMakeFiles/rapid_support.dir/log.cpp.o" "gcc" "src/rapid/support/CMakeFiles/rapid_support.dir/log.cpp.o.d"
  "/root/repo/src/rapid/support/str.cpp" "src/rapid/support/CMakeFiles/rapid_support.dir/str.cpp.o" "gcc" "src/rapid/support/CMakeFiles/rapid_support.dir/str.cpp.o.d"
  "/root/repo/src/rapid/support/table.cpp" "src/rapid/support/CMakeFiles/rapid_support.dir/table.cpp.o" "gcc" "src/rapid/support/CMakeFiles/rapid_support.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
