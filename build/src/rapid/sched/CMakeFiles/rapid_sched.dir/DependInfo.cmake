
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rapid/sched/dsc.cpp" "src/rapid/sched/CMakeFiles/rapid_sched.dir/dsc.cpp.o" "gcc" "src/rapid/sched/CMakeFiles/rapid_sched.dir/dsc.cpp.o.d"
  "/root/repo/src/rapid/sched/liveness.cpp" "src/rapid/sched/CMakeFiles/rapid_sched.dir/liveness.cpp.o" "gcc" "src/rapid/sched/CMakeFiles/rapid_sched.dir/liveness.cpp.o.d"
  "/root/repo/src/rapid/sched/mapping.cpp" "src/rapid/sched/CMakeFiles/rapid_sched.dir/mapping.cpp.o" "gcc" "src/rapid/sched/CMakeFiles/rapid_sched.dir/mapping.cpp.o.d"
  "/root/repo/src/rapid/sched/ordering.cpp" "src/rapid/sched/CMakeFiles/rapid_sched.dir/ordering.cpp.o" "gcc" "src/rapid/sched/CMakeFiles/rapid_sched.dir/ordering.cpp.o.d"
  "/root/repo/src/rapid/sched/schedule.cpp" "src/rapid/sched/CMakeFiles/rapid_sched.dir/schedule.cpp.o" "gcc" "src/rapid/sched/CMakeFiles/rapid_sched.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rapid/graph/CMakeFiles/rapid_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/machine/CMakeFiles/rapid_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/support/CMakeFiles/rapid_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
