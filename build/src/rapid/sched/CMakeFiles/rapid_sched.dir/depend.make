# Empty dependencies file for rapid_sched.
# This may be replaced when dependencies are built.
