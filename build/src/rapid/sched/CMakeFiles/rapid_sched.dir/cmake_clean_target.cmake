file(REMOVE_RECURSE
  "librapid_sched.a"
)
