file(REMOVE_RECURSE
  "CMakeFiles/rapid_sched.dir/dsc.cpp.o"
  "CMakeFiles/rapid_sched.dir/dsc.cpp.o.d"
  "CMakeFiles/rapid_sched.dir/liveness.cpp.o"
  "CMakeFiles/rapid_sched.dir/liveness.cpp.o.d"
  "CMakeFiles/rapid_sched.dir/mapping.cpp.o"
  "CMakeFiles/rapid_sched.dir/mapping.cpp.o.d"
  "CMakeFiles/rapid_sched.dir/ordering.cpp.o"
  "CMakeFiles/rapid_sched.dir/ordering.cpp.o.d"
  "CMakeFiles/rapid_sched.dir/schedule.cpp.o"
  "CMakeFiles/rapid_sched.dir/schedule.cpp.o.d"
  "librapid_sched.a"
  "librapid_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
