# CMake generated Testfile for 
# Source directory: /root/repo/src/rapid/sched
# Build directory: /root/repo/build/src/rapid/sched
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
