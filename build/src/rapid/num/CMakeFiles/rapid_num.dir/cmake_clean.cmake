file(REMOVE_RECURSE
  "CMakeFiles/rapid_num.dir/cholesky_app.cpp.o"
  "CMakeFiles/rapid_num.dir/cholesky_app.cpp.o.d"
  "CMakeFiles/rapid_num.dir/kernels.cpp.o"
  "CMakeFiles/rapid_num.dir/kernels.cpp.o.d"
  "CMakeFiles/rapid_num.dir/lu_app.cpp.o"
  "CMakeFiles/rapid_num.dir/lu_app.cpp.o.d"
  "CMakeFiles/rapid_num.dir/nbody_app.cpp.o"
  "CMakeFiles/rapid_num.dir/nbody_app.cpp.o.d"
  "CMakeFiles/rapid_num.dir/reference.cpp.o"
  "CMakeFiles/rapid_num.dir/reference.cpp.o.d"
  "CMakeFiles/rapid_num.dir/trisolve_app.cpp.o"
  "CMakeFiles/rapid_num.dir/trisolve_app.cpp.o.d"
  "CMakeFiles/rapid_num.dir/workloads.cpp.o"
  "CMakeFiles/rapid_num.dir/workloads.cpp.o.d"
  "librapid_num.a"
  "librapid_num.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_num.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
