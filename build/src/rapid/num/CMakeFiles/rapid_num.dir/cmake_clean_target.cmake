file(REMOVE_RECURSE
  "librapid_num.a"
)
