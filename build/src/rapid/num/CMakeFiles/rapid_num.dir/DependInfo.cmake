
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rapid/num/cholesky_app.cpp" "src/rapid/num/CMakeFiles/rapid_num.dir/cholesky_app.cpp.o" "gcc" "src/rapid/num/CMakeFiles/rapid_num.dir/cholesky_app.cpp.o.d"
  "/root/repo/src/rapid/num/kernels.cpp" "src/rapid/num/CMakeFiles/rapid_num.dir/kernels.cpp.o" "gcc" "src/rapid/num/CMakeFiles/rapid_num.dir/kernels.cpp.o.d"
  "/root/repo/src/rapid/num/lu_app.cpp" "src/rapid/num/CMakeFiles/rapid_num.dir/lu_app.cpp.o" "gcc" "src/rapid/num/CMakeFiles/rapid_num.dir/lu_app.cpp.o.d"
  "/root/repo/src/rapid/num/nbody_app.cpp" "src/rapid/num/CMakeFiles/rapid_num.dir/nbody_app.cpp.o" "gcc" "src/rapid/num/CMakeFiles/rapid_num.dir/nbody_app.cpp.o.d"
  "/root/repo/src/rapid/num/reference.cpp" "src/rapid/num/CMakeFiles/rapid_num.dir/reference.cpp.o" "gcc" "src/rapid/num/CMakeFiles/rapid_num.dir/reference.cpp.o.d"
  "/root/repo/src/rapid/num/trisolve_app.cpp" "src/rapid/num/CMakeFiles/rapid_num.dir/trisolve_app.cpp.o" "gcc" "src/rapid/num/CMakeFiles/rapid_num.dir/trisolve_app.cpp.o.d"
  "/root/repo/src/rapid/num/workloads.cpp" "src/rapid/num/CMakeFiles/rapid_num.dir/workloads.cpp.o" "gcc" "src/rapid/num/CMakeFiles/rapid_num.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rapid/rt/CMakeFiles/rapid_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/sparse/CMakeFiles/rapid_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/sched/CMakeFiles/rapid_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/graph/CMakeFiles/rapid_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/mem/CMakeFiles/rapid_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/machine/CMakeFiles/rapid_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/rapid/support/CMakeFiles/rapid_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
