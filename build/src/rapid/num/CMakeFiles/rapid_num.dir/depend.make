# Empty dependencies file for rapid_num.
# This may be replaced when dependencies are built.
