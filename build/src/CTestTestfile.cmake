# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("rapid/support")
subdirs("rapid/sparse")
subdirs("rapid/graph")
subdirs("rapid/mem")
subdirs("rapid/machine")
subdirs("rapid/sched")
subdirs("rapid/rt")
subdirs("rapid/num")
